package dataflow

import (
	"fmt"

	"repro/internal/display"
	"repro/internal/expr"
	"repro/internal/geom"
	"repro/internal/rel"
	"repro/internal/types"
)

// registerVizBoxes installs the drill-down primitives of Figure 6
// (Set Range, Overlay, Shuffle) and the group operations of Section 7
// (Stitch, Replicate).
func registerVizBoxes(r *Registry) {
	r.MustRegister(&Kind{
		Name:          "setrange",
		Doc:           "Set Range: the minimum and maximum elevations at which the relation's display is defined (Section 6.1). Negative elevations put the display on the canvas underside, visible in rear view mirrors.",
		ExampleParams: Params{"lo": "0", "hi": "100"},
		Ports:         fixedPorts([]PortType{RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			lo, err := p.Float("lo", 0)
			if err != nil {
				return nil, err
			}
			hi, err := p.Float("hi", 0)
			if err != nil {
				return nil, err
			}
			if lo > hi {
				return nil, fmt.Errorf("setrange: lo %g > hi %g", lo, hi)
			}
			out := e.Clone()
			out.ElevRange = geom.Rg(lo, hi)
			return []Value{out}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "overlay",
		Doc:           "Overlay: superimpose the second composite onto the first with an optional n-dimensional 'offset' (Section 6.1). Dimension mismatches are legal; lower-dimensional components are invariant in the extra dimensions.",
		ExampleParams: Params{},
		Ports:         fixedPorts([]PortType{CType, CType}, []PortType{CType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			base, err := asComposite(in[0])
			if err != nil {
				return nil, err
			}
			top, err := asComposite(in[1])
			if err != nil {
				return nil, err
			}
			offset, err := p.Floats("offset")
			if err != nil {
				return nil, err
			}
			out := base.Clone()
			out.Overlay(top, offset) // mismatch warning is advisory; surfaced by the ops layer
			return []Value{out}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "shuffle",
		Doc:           "Shuffle: move the relation at 'layer' to the top of the composite's drawing order (Section 6.1).",
		ExampleParams: Params{"layer": "0"},
		Ports:         fixedPorts([]PortType{CType}, []PortType{CType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			c, err := asComposite(in[0])
			if err != nil {
				return nil, err
			}
			layer, err := p.Int("layer", 0)
			if err != nil {
				return nil, err
			}
			out := c.Clone()
			if err := out.Shuffle(layer); err != nil {
				return nil, err
			}
			return []Value{out}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "stitch",
		Doc:           "Stitch: combine 'n' composites into a group laid out 'layout' (horizontal, vertical, or tabular with 'cols') (Section 7.3).",
		ExampleParams: Params{"n": "2"},
		Ports: func(p Params) ([]PortType, []PortType, error) {
			n, err := p.Int("n", 2)
			if err != nil {
				return nil, nil, err
			}
			if n < 1 {
				return nil, nil, fmt.Errorf("stitch needs n >= 1")
			}
			ins := make([]PortType, n)
			for i := range ins {
				ins[i] = CType
			}
			return ins, []PortType{GType}, nil
		},
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			layout, cols, err := parseLayout(p)
			if err != nil {
				return nil, err
			}
			members := make([]*display.Composite, len(in))
			for i, v := range in {
				c, err := asComposite(v)
				if err != nil {
					return nil, err
				}
				members[i] = c
			}
			g, err := display.NewGroup(p.Str("label", "stitched"), layout, cols, members...)
			if err != nil {
				return nil, err
			}
			return []Value{g}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "replicate",
		Doc:           "Replicate: partition the input relation by ';'-separated predicates in 'preds' and/or the distinct values of enumerated attribute 'attr', then stitch the replicas into a group (Section 7.4).",
		ExampleParams: Params{"preds": "true"},
		Ports:         fixedPorts([]PortType{RType}, []PortType{GType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			hsrcs := splitPreds(p.Str("preds", ""))
			vattr := p.Str("attr", "")
			if len(hsrcs) == 0 && vattr == "" {
				return nil, fmt.Errorf("replicate needs preds= and/or attr=")
			}

			// Expand the enumerated attribute to equality predicates.
			var vsrcs []string
			if vattr != "" {
				vals, err := rel.DistinctValues(e.Rel, vattr)
				if err != nil {
					return nil, err
				}
				k, _ := e.Rel.AttrKind(vattr)
				for _, v := range vals {
					vsrcs = append(vsrcs, fmt.Sprintf("%s = %s", vattr, literal(k, v)))
				}
				if len(vsrcs) == 0 {
					return nil, fmt.Errorf("replicate: attribute %q has no values to enumerate", vattr)
				}
			}

			// Cross the two partition dimensions: tabular with the
			// horizontal predicates as columns (the paper's salary x
			// department example).
			var cells []string
			cols := 0
			switch {
			case len(hsrcs) > 0 && len(vsrcs) > 0:
				cols = len(hsrcs)
				for _, v := range vsrcs {
					for _, h := range hsrcs {
						cells = append(cells, fmt.Sprintf("(%s) and (%s)", h, v))
					}
				}
			case len(hsrcs) > 0:
				cells = hsrcs
			default:
				cells = vsrcs
			}

			preds := make([]expr.Node, len(cells))
			for i, s := range cells {
				preds[i], err = expr.Parse(s)
				if err != nil {
					return nil, fmt.Errorf("replicate predicate %q: %w", s, err)
				}
			}
			parts, err := rel.Partition(e.Rel, preds)
			if err != nil {
				return nil, err
			}
			members := make([]*display.Composite, len(parts))
			for i, part := range parts {
				pe := rederive(e, part)
				pe.Label = fmt.Sprintf("%s[%s]", e.Label, cells[i])
				members[i] = display.FromR(pe)
			}

			layout, userCols, err := parseLayout(p)
			if err != nil {
				return nil, err
			}
			if cols > 0 {
				layout, userCols = display.Tabular, cols
			}
			g, err := display.NewGroup(e.Label+" replicated", layout, userCols, members...)
			if err != nil {
				return nil, err
			}
			return []Value{g}, nil
		},
	})
}

func parseLayout(p Params) (display.Layout, int, error) {
	cols, err := p.Int("cols", 0)
	if err != nil {
		return 0, 0, err
	}
	switch p.Str("layout", "horizontal") {
	case "horizontal":
		return display.Horizontal, cols, nil
	case "vertical":
		return display.Vertical, cols, nil
	case "tabular":
		if cols <= 0 {
			return 0, 0, fmt.Errorf("tabular layout needs cols=")
		}
		return display.Tabular, cols, nil
	}
	return 0, 0, fmt.Errorf("unknown layout %q", p.Str("layout", ""))
}

// literal renders a value as expression source of the given kind.
func literal(k types.Kind, v types.Value) string {
	switch k {
	case types.Text:
		return "'" + v.String() + "'"
	case types.Date:
		y, m, d := v.YMD()
		return fmt.Sprintf("date(%d, %d, %d)", y, m, d)
	default:
		return v.String()
	}
}
