package dataflow

import (
	"fmt"
	"sort"
)

// Box is one node of a boxes-and-arrows program: a primitive procedure
// with typed inputs and outputs. Boxes are created from registered kinds
// (see Registry); Params carry the box's serializable configuration (the
// Restrict predicate, the Sample probability, display specifications, and
// so on).
type Box struct {
	ID     int
	Kind   string
	Label  string
	Params Params
	In     []PortType
	Out    []PortType
}

// Edge connects output port FromPort of box From to input port ToPort of
// box To.
type Edge struct {
	From, FromPort int
	To, ToPort     int
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("%d.%d->%d.%d", e.From, e.FromPort, e.To, e.ToPort)
}

// Graph is a boxes-and-arrows program. Structural mutations bump per-box
// versions so evaluators can invalidate memoized results precisely;
// "there is no distinction between constructing a program, modifying an
// existing program, and using an existing program" (principle 2), so the
// graph is always runnable.
type Graph struct {
	registry *Registry
	boxes    map[int]*Box
	edges    map[int]map[int]Edge // edges[to][toPort]
	nextID   int
	// version[id] is the value of the global clock when box id last
	// changed. The clock is global so staleness stamps are comparable
	// across boxes: a box's memo entry is valid iff it was computed at a
	// stamp >= the max version along its transitive inputs.
	version map[int]int64
	clock   int64
}

// NewGraph returns an empty program over the given box registry.
func NewGraph(reg *Registry) *Graph {
	return &Graph{
		registry: reg,
		boxes:    make(map[int]*Box),
		edges:    make(map[int]map[int]Edge),
		version:  make(map[int]int64),
		nextID:   1,
	}
}

// Registry returns the box registry the graph resolves kinds against.
func (g *Graph) Registry() *Registry { return g.registry }

// Boxes returns all boxes sorted by ID.
func (g *Graph) Boxes() []*Box {
	out := make([]*Box, 0, len(g.boxes))
	for _, b := range g.boxes {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Box returns the box with the given ID.
func (g *Graph) Box(id int) (*Box, error) {
	b, ok := g.boxes[id]
	if !ok {
		return nil, fmt.Errorf("dataflow: no box %d: %w", id, ErrNoSuchBox)
	}
	return b, nil
}

// Edges returns all edges in deterministic order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, ports := range g.edges {
		for _, e := range ports {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.To != b.To {
			return a.To < b.To
		}
		return a.ToPort < b.ToPort
	})
	return out
}

// Version returns the box's mutation counter, used by evaluators for
// cache invalidation.
func (g *Graph) Version(id int) int64 { return g.version[id] }

// Clock returns the graph's global mutation clock: it advances on every
// structural or parameter change anywhere in the program, so a cached
// judgment about the graph (the evaluator's pre-flight validation memo)
// is valid exactly as long as Clock is unchanged.
func (g *Graph) Clock() int64 { return g.clock }

func (g *Graph) bump(id int) {
	g.clock++
	g.version[id] = g.clock
}

// AddBox instantiates a registered box kind with the given parameters and
// adds it to the program, returning the new box. Port types are derived
// from the kind and parameters.
func (g *Graph) AddBox(kind string, params Params) (*Box, error) {
	k, err := g.registry.Kind(kind)
	if err != nil {
		return nil, err
	}
	if params == nil {
		params = Params{}
	}
	in, out, err := k.Ports(params)
	if err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", kind, err)
	}
	b := &Box{
		ID:     g.nextID,
		Kind:   kind,
		Label:  kind,
		Params: params.Clone(),
		In:     in,
		Out:    out,
	}
	g.nextID++
	g.boxes[b.ID] = b
	g.bump(b.ID)
	return b, nil
}

// SetParams replaces a box's parameters, re-deriving its port types. The
// new ports must be type-equal to the old ones if any port is connected;
// otherwise arbitrary reshaping is allowed. This is the engine beneath
// "inspect, delete, and replace boxes as necessary to fix the program" at
// the parameter level (changing a Restrict predicate re-fires downstream).
func (g *Graph) SetParams(id int, params Params) error {
	b, err := g.Box(id)
	if err != nil {
		return err
	}
	k, err := g.registry.Kind(b.Kind)
	if err != nil {
		return err
	}
	in, out, err := k.Ports(params)
	if err != nil {
		return fmt.Errorf("dataflow: %s: %w", b.Kind, err)
	}
	if g.anyConnected(id) {
		if len(in) != len(b.In) || len(out) != len(b.Out) {
			return fmt.Errorf("dataflow: cannot reshape connected box %d (%s): %w", id, b.Kind, ErrBoxConnected)
		}
		for i := range in {
			if !in[i].Equal(b.In[i]) {
				return fmt.Errorf("dataflow: new params change input %d type of connected box %d: %w", i, id, ErrBoxConnected)
			}
		}
		for i := range out {
			if !out[i].Equal(b.Out[i]) {
				return fmt.Errorf("dataflow: new params change output %d type of connected box %d: %w", i, id, ErrBoxConnected)
			}
		}
	}
	b.Params = params.Clone()
	b.In, b.Out = in, out
	g.bump(id)
	return nil
}

func (g *Graph) anyConnected(id int) bool {
	if len(g.edges[id]) > 0 {
		return true
	}
	for _, ports := range g.edges {
		for _, e := range ports {
			if e.From == id {
				return true
			}
		}
	}
	return false
}

// SetLabel renames a box in the program window.
func (g *Graph) SetLabel(id int, label string) error {
	b, err := g.Box(id)
	if err != nil {
		return err
	}
	b.Label = label
	return nil
}

// Connect adds an edge from output (from, fromPort) to input (to, toPort).
// It enforces port existence, type compatibility (with R->C->G promotion),
// single-edge-per-input, and acyclicity.
func (g *Graph) Connect(from, fromPort, to, toPort int) error {
	fb, err := g.Box(from)
	if err != nil {
		return err
	}
	tb, err := g.Box(to)
	if err != nil {
		return err
	}
	if fromPort < 0 || fromPort >= len(fb.Out) {
		return fmt.Errorf("dataflow: box %d (%s) has no output %d: %w", from, fb.Kind, fromPort, ErrNoSuchPort)
	}
	if toPort < 0 || toPort >= len(tb.In) {
		return fmt.Errorf("dataflow: box %d (%s) has no input %d: %w", to, tb.Kind, toPort, ErrNoSuchPort)
	}
	if !Compatible(fb.Out[fromPort], tb.In[toPort]) {
		return fmt.Errorf("dataflow: type error: cannot connect %s output of %s to %s input of %s: %w",
			fb.Out[fromPort], fb.Kind, tb.In[toPort], tb.Kind, ErrPortType)
	}
	if _, taken := g.edges[to][toPort]; taken {
		return fmt.Errorf("dataflow: input %d of box %d (%s) is already connected: %w", toPort, to, tb.Kind, ErrDuplicateInput)
	}
	if from == to || g.reaches(to, from) {
		return fmt.Errorf("dataflow: connecting %d->%d would create a cycle: %w", from, to, ErrCycle)
	}
	if g.edges[to] == nil {
		g.edges[to] = make(map[int]Edge)
	}
	g.edges[to][toPort] = Edge{From: from, FromPort: fromPort, To: to, ToPort: toPort}
	g.bump(to)
	return nil
}

// Disconnect removes the edge feeding input (to, toPort).
func (g *Graph) Disconnect(to, toPort int) error {
	if _, ok := g.edges[to][toPort]; !ok {
		return fmt.Errorf("dataflow: input %d of box %d is not connected: %w", toPort, to, ErrUnconnected)
	}
	delete(g.edges[to], toPort)
	g.bump(to)
	return nil
}

// InputEdge returns the edge feeding input (to, toPort), if any.
func (g *Graph) InputEdge(to, toPort int) (Edge, bool) {
	e, ok := g.edges[to][toPort]
	return e, ok
}

// OutputEdges returns the edges leaving box from, in deterministic order.
func (g *Graph) OutputEdges(from int) []Edge {
	var out []Edge
	for _, ports := range g.edges {
		for _, e := range ports {
			if e.From == from {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.FromPort != b.FromPort {
			return a.FromPort < b.FromPort
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.ToPort < b.ToPort
	})
	return out
}

// reaches reports whether box b is reachable from box a along edges.
func (g *Graph) reaches(a, b int) bool {
	seen := map[int]bool{}
	var walk func(int) bool
	walk = func(id int) bool {
		if id == b {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, e := range g.OutputEdges(id) {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(a)
}

// DeleteBox removes a box under the legality rules of Section 4.1:
// "A box may be deleted if (1) it has no outputs connected to other boxes
// ..., or (2) it has a single input and output of the same type (in which
// case the system connects the deleted box's predecessor to its
// successor)." Rule (2) may leave multiple successors; all are re-wired to
// the predecessor. These rules preserve "everything is always
// visualizable": no input is ever left dangling.
func (g *Graph) DeleteBox(id int) error {
	b, err := g.Box(id)
	if err != nil {
		return err
	}
	outs := g.OutputEdges(id)

	if len(outs) == 0 {
		// Rule 1: nothing downstream depends on this box.
		for port := range g.edges[id] {
			delete(g.edges[id], port)
		}
		delete(g.edges, id)
		delete(g.boxes, id)
		return nil
	}

	// Rule 2: splice.
	if len(b.In) != 1 || len(b.Out) != 1 || !b.In[0].Equal(b.Out[0]) {
		return fmt.Errorf("dataflow: cannot delete box %d (%s): it has connected outputs and is not a single in/out pass-through of one type: %w", id, b.Kind, ErrBoxConnected)
	}
	pred, ok := g.InputEdge(id, 0)
	if !ok {
		return fmt.Errorf("dataflow: cannot delete box %d (%s): connected outputs but no predecessor to splice: %w", id, b.Kind, ErrBoxConnected)
	}
	for _, e := range outs {
		delete(g.edges[e.To], e.ToPort)
		g.edges[e.To][e.ToPort] = Edge{From: pred.From, FromPort: pred.FromPort, To: e.To, ToPort: e.ToPort}
		g.bump(e.To)
	}
	delete(g.edges, id)
	delete(g.boxes, id)
	return nil
}

// ReplaceBox swaps box id for a new box of a different kind with exactly
// compatible (equal) port types, keeping all connections (Section 4.1's
// Replace Box).
func (g *Graph) ReplaceBox(id int, kind string, params Params) (*Box, error) {
	old, err := g.Box(id)
	if err != nil {
		return nil, err
	}
	k, err := g.registry.Kind(kind)
	if err != nil {
		return nil, err
	}
	if params == nil {
		params = Params{}
	}
	in, out, err := k.Ports(params)
	if err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", kind, err)
	}
	if len(in) != len(old.In) || len(out) != len(old.Out) {
		return nil, fmt.Errorf("dataflow: replace: %s has %d/%d ports, %s has %d/%d: %w",
			old.Kind, len(old.In), len(old.Out), kind, len(in), len(out), ErrPortType)
	}
	for i := range in {
		if !in[i].Equal(old.In[i]) {
			return nil, fmt.Errorf("dataflow: replace: input %d type mismatch (%s vs %s): %w", i, old.In[i], in[i], ErrPortType)
		}
	}
	for i := range out {
		if !out[i].Equal(old.Out[i]) {
			return nil, fmt.Errorf("dataflow: replace: output %d type mismatch (%s vs %s): %w", i, old.Out[i], out[i], ErrPortType)
		}
	}
	old.Kind = kind
	old.Label = kind
	old.Params = params.Clone()
	old.In, old.Out = in, out
	g.bump(id)
	return old, nil
}

// InsertT inserts a T box on the edge feeding input (to, toPort): "A T box
// simply passes its input unchanged to both outputs, and allows another
// box, for example a viewer, to be connected" (Section 4.1). The second
// output of the returned T box is free.
func (g *Graph) InsertT(to, toPort int) (*Box, error) {
	e, ok := g.InputEdge(to, toPort)
	if !ok {
		return nil, fmt.Errorf("dataflow: no edge into input %d of box %d: %w", toPort, to, ErrUnconnected)
	}
	fb, err := g.Box(e.From)
	if err != nil {
		return nil, err
	}
	pt := fb.Out[e.FromPort]
	t, err := g.AddBox("t", Params{"type": pt.String()})
	if err != nil {
		return nil, err
	}
	if err := g.Disconnect(to, toPort); err != nil {
		return nil, err
	}
	if err := g.Connect(e.From, e.FromPort, t.ID, 0); err != nil {
		return nil, err
	}
	if err := g.Connect(t.ID, 0, to, toPort); err != nil {
		return nil, err
	}
	return t, nil
}

// MatchingKinds implements the Apply Box menu (Section 4.1): given the
// types of selected output edges, it returns registered kinds whose
// inputs could take them (every selected type must be acceptable by a
// distinct input, in order).
func (g *Graph) MatchingKinds(selected []PortType) []string {
	var out []string
	for _, name := range g.registry.Names() {
		k, err := g.registry.Kind(name)
		if err != nil {
			continue
		}
		in, _, err := k.Ports(k.ExampleParams)
		if err != nil {
			continue
		}
		if len(in) < len(selected) {
			continue
		}
		ok := true
		for i, s := range selected {
			if !Compatible(s, in[i]) {
				ok = false
				break
			}
		}
		if ok && len(selected) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// Clear removes every box and edge (New Program).
func (g *Graph) Clear() {
	g.boxes = make(map[int]*Box)
	g.edges = make(map[int]map[int]Edge)
	g.version = make(map[int]int64)
	g.nextID = 1
}

// Sinks returns boxes with no outgoing edges, sorted by ID — typically
// the viewers.
func (g *Graph) Sinks() []*Box {
	var out []*Box
	for _, b := range g.Boxes() {
		if len(g.OutputEdges(b.ID)) == 0 {
			out = append(out, b)
		}
	}
	return out
}
