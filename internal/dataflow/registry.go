package dataflow

import (
	"fmt"
	"sort"

	"repro/internal/rel"
)

// TableSource resolves table names for Add Table boxes; the db package
// implements it.
type TableSource interface {
	// Table returns the named base relation.
	Table(name string) (*rel.Relation, error)
	// TableNames lists available tables for the menu of tables.
	TableNames() []string
}

// FireContext carries the environment a box firing may need.
type FireContext struct {
	Tables TableSource
	// Registry gives higher-order boxes (the lifting wrappers of
	// Section 2) access to the kinds they wrap.
	Registry *Registry
}

// FireFunc computes a box's outputs from its inputs. Inputs arrive
// already promoted to the box's declared input port types. The returned
// slice must have one value per declared output.
type FireFunc func(fc *FireContext, p Params, in []Value) ([]Value, error)

// Kind describes a registered box kind: how to derive its port types from
// parameters, and how to fire it. ExampleParams supply defaults so that
// Apply Box can shape a kind without user parameters.
type Kind struct {
	Name          string
	Doc           string
	ExampleParams Params
	Ports         func(p Params) (in, out []PortType, err error)
	Fire          FireFunc
	// FireDelta, when set, maintains the kind's outputs incrementally
	// from input tuple deltas (see delta.go). Kinds without one are
	// delta-opaque and fall back to full refiring.
	FireDelta DeltaFireFunc
}

// Registry maps kind names to kinds. The "menu of all boxes available"
// is Names(); big programmers extend the system by registering more kinds
// (principle 5, the big programmer / little programmer model).
type Registry struct {
	kinds map[string]*Kind
}

// NewRegistry returns a registry preloaded with every builtin Tioga-2 box
// kind.
func NewRegistry() *Registry {
	r := &Registry{kinds: make(map[string]*Kind)}
	registerBuiltins(r)
	return r
}

// Register adds a kind, rejecting duplicates.
func (r *Registry) Register(k *Kind) error {
	if k.Name == "" || k.Ports == nil || k.Fire == nil {
		return fmt.Errorf("dataflow: incomplete kind registration %q: %w", k.Name, ErrBadRegistration)
	}
	if _, dup := r.kinds[k.Name]; dup {
		return fmt.Errorf("dataflow: kind %q already registered: %w", k.Name, ErrBadRegistration)
	}
	r.kinds[k.Name] = k
	return nil
}

// MustRegister is Register that panics on error, for builtin setup.
func (r *Registry) MustRegister(k *Kind) {
	if err := r.Register(k); err != nil {
		panic(err)
	}
}

// Kind returns the named kind.
func (r *Registry) Kind(name string) (*Kind, error) {
	k, ok := r.kinds[name]
	if !ok {
		return nil, fmt.Errorf("dataflow: unknown box kind %q: %w", name, ErrUnknownKind)
	}
	return k, nil
}

// Has reports whether the kind exists.
func (r *Registry) Has(name string) bool {
	_, ok := r.kinds[name]
	return ok
}

// Names returns all kind names sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.kinds))
	for n := range r.kinds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
