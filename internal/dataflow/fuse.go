package dataflow

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/rel"
)

// Plan-time fusion: after a request is planned (and after pre-flight has
// already reported every TV001–TV009 diagnostic — fusion can never mask
// them), maximal chains of adjacent restrict/project boxes on R-typed
// edges are collapsed into the chain tail's firing, which executes them
// as one rel.FusedScan over the source relation: one pass, no
// intermediate relations, provenance and display metadata preserved.
//
// Only interior boxes that are invisible to the rest of the request may
// be inlined: each must have exactly one consumer in the whole graph and
// must not be the demanded target, so no other box or request will miss
// its memo entry. An interior demanded directly by a later request simply
// fires on its own then. Invalidation is untouched — a fused tail's
// staleness stamp already covers the interiors (they are on its input
// walk), and Invalidate sweeps dependents over the real edge set.

var fusionOff atomic.Bool

// SetFusionDisabled turns restrict/project chain fusion off (true) or on
// (false) process-wide and returns the previous setting; the per-request
// WithoutFusion option does the same for one evaluation.
func SetFusionDisabled(off bool) bool { return fusionOff.Swap(off) }

// FusionDisabled reports whether chain fusion is disabled process-wide.
func FusionDisabled() bool { return fusionOff.Load() }

// fusedStep is one box of a fused chain, head to tail.
type fusedStep struct {
	id  int
	box *Box
}

// fusedChain is a run of boxes collapsed into its tail's firing. src is
// the edge feeding the head.
type fusedChain struct {
	src   Edge
	steps []fusedStep
}

// fusible reports whether a box kind participates in chain fusion.
func fusible(b *Box) bool { return b.Kind == "restrict" || b.Kind == "project" }

// fuseChains rewrites the plan in place: it records, per chain tail, the
// steps to execute as one fused scan, and marks the interiors so the
// wavefront skips them.
func (e *Evaluator) fuseChains(p *plan, target int) {
	// Consumer counts over the full graph, not just the plan: an interior
	// with an off-plan consumer must keep producing a memo entry.
	consumers := make(map[int]int)
	for _, edge := range e.g.Edges() {
		consumers[edge.From]++
	}
	// absorbed reports whether n can be inlined into its downstream
	// consumer: a fusible single-consumer box, not the demanded target,
	// whose one consumer is a fusible box in this plan.
	absorbed := func(n *planNode) bool {
		if !fusible(n.box) || n.id == target || consumers[n.id] != 1 || len(n.deps) != 1 {
			return false
		}
		outs := e.g.OutputEdges(n.id)
		if len(outs) != 1 {
			return false
		}
		down := p.nodes[outs[0].To]
		return down != nil && fusible(down.box)
	}

	for _, n := range p.nodes {
		if !fusible(n.box) || absorbed(n) || len(n.deps) != 1 {
			continue // not a chain tail
		}
		// Walk upstream over absorbed producers to the chain head.
		head := n
		for {
			up := p.nodes[head.deps[0].From]
			if up == nil || !absorbed(up) {
				break
			}
			head = up
		}
		if head == n {
			continue // nothing to fuse into this tail
		}
		var steps []fusedStep
		for cur := head; ; cur = p.nodes[e.g.OutputEdges(cur.id)[0].To] {
			steps = append(steps, fusedStep{id: cur.id, box: cur.box})
			if cur == n {
				break
			}
		}
		if p.fused == nil {
			p.fused = make(map[int]*fusedChain)
			p.inlined = make(map[int]bool)
		}
		p.fused[n.id] = &fusedChain{src: head.deps[0], steps: steps}
		for _, s := range steps[:len(steps)-1] {
			p.inlined[s.id] = true
		}
	}
}

// fireFused executes a fused chain as one rel.FusedScan, reading each
// step's parameters at fire time exactly like individual firings would,
// and replaying display-metadata derivation (rederive) step by step so
// the resulting Extended matches the unfused chain's.
func (e *Evaluator) fireFused(ctx context.Context, p *plan, n *planNode, ch *fusedChain, o EvalOptions, rs *runStats) ([]Value, int64, error) {
	stamp := n.stamp
	var upVals []Value
	var upStamp int64
	if pn := p.nodes[ch.src.From]; pn != nil {
		upVals, upStamp = e.cached(pn.id, pn.stamp)
	}
	if upVals == nil {
		var err error
		upVals, upStamp, err = e.resolveProducer(ctx, p, ch.src.From, o, rs)
		if err != nil {
			return nil, 0, err
		}
	}
	if upStamp > stamp {
		stamp = upStamp
	}
	headID := ch.steps[0].id
	headBox := ch.steps[0].box
	if ch.src.FromPort >= len(upVals) || upVals[ch.src.FromPort] == nil {
		return nil, 0, evalPortErr("fire", ch.src.From, ch.src.FromPort, "",
			fmt.Errorf("%w (demanded by box %d)", ErrNoData, headID))
	}
	pv, err := PromoteValue(upVals[ch.src.FromPort], headBox.In[ch.src.ToPort])
	if err != nil {
		return nil, 0, evalPortErr("promote", headID, ch.src.ToPort, headBox.Kind, err)
	}
	ein, err := asExtended(pv)
	if err != nil {
		return nil, 0, evalErr("fire", headID, headBox.Kind, err)
	}

	// Build the pipeline from current parameters; a bad parameter is
	// blamed on its own box, like an individual firing.
	ops := make([]rel.FusedOp, len(ch.steps))
	for i, s := range ch.steps {
		switch s.box.Kind {
		case "restrict":
			src, err := s.box.Params.Need("pred")
			if err != nil {
				return nil, 0, evalErr("fire", s.id, s.box.Kind, err)
			}
			pred, err := expr.Parse(src)
			if err != nil {
				return nil, 0, evalErr("fire", s.id, s.box.Kind, err)
			}
			ops[i] = rel.FusedOp{Pred: pred}
		case "project":
			attrs := s.box.Params.List("attrs")
			if len(attrs) == 0 {
				return nil, 0, evalErr("fire", s.id, s.box.Kind, fmt.Errorf("project needs attrs="))
			}
			ops[i] = rel.FusedOp{Project: attrs}
		}
	}

	workers := o.Workers
	if o.Serial {
		workers = 1
	}
	fctx := ctx
	var sp *obs.Span
	if obs.Recording() {
		fctx, sp = obs.StartSpanCtx(ctx, obs.SpanEvalFire,
			"box", strconv.Itoa(n.id), "kind", obs.FusedKindPrefix+strconv.Itoa(len(ch.steps)))
	}
	t := obs.StartTimer(obs.EvalFireNS)
	res, err := rel.FusedScanCtx(fctx, ein.Rel, ops, workers)
	t.Stop()
	sp.End()
	if err != nil {
		boxID, kind := n.id, n.box.Kind
		cause := err
		var se *rel.FusedStepError
		if errors.As(err, &se) {
			boxID, kind = ch.steps[se.Step].id, ch.steps[se.Step].box.Kind
			cause = se.Err
		}
		werr := evalErr("fire", boxID, kind, cause)
		obs.RecordError(obs.EvalErrors, werr)
		return nil, 0, werr
	}

	// Thread display metadata through the chain: rederive over each
	// step's result shape, ending on the real output relation.
	cur := ein
	for i := range ch.steps {
		cur = rederive(cur, res.Shapes[i])
	}
	return []Value{cur}, stamp, nil
}
