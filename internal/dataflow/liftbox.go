package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/display"
)

// The lifting machinery of Section 2: "Tioga-2 extends such operations to
// work on 'higher' types. ... Given a group G input to Restrict, Tioga-2
// asks the user for the composite within the group, and the relation
// within that composite, to which the Restrict applies. After applying
// the Restrict to the selected relation, Tioga-2 reassembles the
// composite and the group in the obvious way."
//
// liftc and liftg wrap any R -> R box kind: the wrapped kind's name goes
// in 'kind', the selection in 'member'/'layer', and the wrapped kind's
// own parameters are nested under the "op." prefix. The ops layer builds
// these boxes when the user points an R operation at a composite or
// group, so "the user need not be aware explicitly of how Restrict is
// overloaded".

func registerLiftBoxes(r *Registry) {
	r.MustRegister(liftKind("liftc", CType,
		"Apply an R->R operation 'kind' to relation 'layer' of a composite, reassembling the composite (Section 2 lifting)."))
	r.MustRegister(liftKind("liftg", GType,
		"Apply an R->R operation 'kind' to relation ('member', 'layer') of a group, reassembling the group (Section 2 lifting)."))
}

func liftKind(name string, pt PortType, doc string) *Kind {
	return &Kind{
		Name:          name,
		Doc:           doc,
		ExampleParams: Params{"kind": "restrict", "op.pred": "true"},
		Ports:         fixedPorts([]PortType{pt}, []PortType{pt}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			innerName, err := p.Need("kind")
			if err != nil {
				return nil, err
			}
			if fc.Registry == nil {
				return nil, fmt.Errorf("lift: no registry in fire context")
			}
			inner, err := fc.Registry.Kind(innerName)
			if err != nil {
				return nil, err
			}
			innerParams := innerOpParams(p)
			iin, iout, err := inner.Ports(innerParams)
			if err != nil {
				return nil, err
			}
			if len(iin) != 1 || len(iout) != 1 || !iin[0].Equal(RType) || !iout[0].Equal(RType) {
				return nil, fmt.Errorf("lift: %s is not an R->R operation", innerName)
			}
			member, err := p.Int("member", 0)
			if err != nil {
				return nil, err
			}
			layer, err := p.Int("layer", 0)
			if err != nil {
				return nil, err
			}
			d, ok := in[0].(display.Displayable)
			if !ok {
				return nil, fmt.Errorf("lift: input is not displayable (%T)", in[0])
			}
			sel := display.Selection{Member: member, Layer: layer}
			ext, err := display.SelectRelation(d, sel)
			if err != nil {
				return nil, err
			}
			out, err := inner.Fire(fc, innerParams, []Value{ext})
			if err != nil {
				return nil, fmt.Errorf("lift %s: %w", innerName, err)
			}
			repl, ok := out[0].(*display.Extended)
			if !ok {
				return nil, fmt.Errorf("lift %s: inner operation produced %T", innerName, out[0])
			}
			reassembled, err := display.ReplaceRelation(d, sel, repl)
			if err != nil {
				return nil, err
			}
			return []Value{reassembled}, nil
		},
	}
}

// innerOpParams strips the "op." prefix to build the wrapped kind's
// parameter map.
func innerOpParams(p Params) Params {
	out := Params{}
	for k, v := range p {
		if rest, ok := strings.CutPrefix(k, "op."); ok {
			out[rest] = v
		}
	}
	return out
}

// LiftParams builds the parameter map for a lift box wrapping kind with
// the given inner parameters and selection.
func LiftParams(kind string, inner Params, member, layer int) Params {
	out := Params{
		"kind":   kind,
		"member": fmt.Sprintf("%d", member),
		"layer":  fmt.Sprintf("%d", layer),
	}
	for k, v := range inner {
		out["op."+k] = v
	}
	return out
}
