package dataflow

import (
	"testing"

	"repro/internal/display"
	"repro/internal/rel"
	"repro/internal/workload"
)

// memSource is a TableSource over a fixed map.
type memSource map[string]*rel.Relation

func (m memSource) Table(name string) (*rel.Relation, error) {
	t, ok := m[name]
	if !ok {
		return nil, errNoTable(name)
	}
	return t, nil
}

type errNoTable string

func (e errNoTable) Error() string { return "no table " + string(e) }

func (m memSource) TableNames() []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	return out
}

func testSource() memSource {
	st := workload.Stations(40, 1)
	obs, err := workload.Observations(st, 12, 2)
	if err != nil {
		panic(err)
	}
	return memSource{"Stations": st, "Observations": obs, "LouisianaMap": workload.LouisianaMap()}
}

func newTestGraph(t testing.TB) (*Graph, *Evaluator) {
	t.Helper()
	g := NewGraph(NewRegistry())
	return g, NewEvaluator(g, testSource())
}

func TestAddBoxUnknownKind(t *testing.T) {
	g, _ := newTestGraph(t)
	if _, err := g.AddBox("froboz", nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestConnectTypeChecking(t *testing.T) {
	g, _ := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Stations"})
	rb, _ := g.AddBox("restrict", Params{"pred": "true"})
	ov, _ := g.AddBox("overlay", nil)
	vb, _ := g.AddBox("viewer", nil)

	// R -> R fine.
	if err := g.Connect(tb.ID, 0, rb.ID, 0); err != nil {
		t.Fatalf("R->R: %v", err)
	}
	// R -> C promotes.
	if err := g.Connect(rb.ID, 0, ov.ID, 0); err != nil {
		t.Fatalf("R->C promotion: %v", err)
	}
	// C -> G promotes into the viewer.
	if err := g.Connect(tb.ID, 0, ov.ID, 1); err != nil {
		t.Fatalf("second overlay input: %v", err)
	}
	if err := g.Connect(ov.ID, 0, vb.ID, 0); err != nil {
		t.Fatalf("C->G promotion: %v", err)
	}

	// Double-connecting an input fails.
	if err := g.Connect(tb.ID, 0, rb.ID, 0); err == nil {
		t.Error("double connection accepted")
	}
	// Bad port indexes fail.
	if err := g.Connect(tb.ID, 5, rb.ID, 0); err == nil {
		t.Error("missing output accepted")
	}
	if err := g.Connect(tb.ID, 0, rb.ID, 5); err == nil {
		t.Error("missing input accepted")
	}
	// G -> R is a type error: a stitch output cannot feed restrict.
	st, _ := g.AddBox("stitch", Params{"n": "1"})
	r2, _ := g.AddBox("restrict", Params{"pred": "true"})
	if err := g.Connect(st.ID, 0, r2.ID, 0); err == nil {
		t.Error("G->R accepted")
	}
}

func TestCycleRejection(t *testing.T) {
	g, _ := newTestGraph(t)
	a, _ := g.AddBox("restrict", Params{"pred": "true"})
	b, _ := g.AddBox("restrict", Params{"pred": "true"})
	if err := g.Connect(a.ID, 0, b.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(b.ID, 0, a.ID, 0); err == nil {
		t.Error("cycle accepted")
	}
	if err := g.Connect(a.ID, 0, a.ID, 0); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestDeleteBoxRules(t *testing.T) {
	g, _ := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Stations"})
	rb, _ := g.AddBox("restrict", Params{"pred": "true"})
	pj, _ := g.AddBox("project", Params{"attrs": "id"})
	if err := g.Connect(tb.ID, 0, rb.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(rb.ID, 0, pj.ID, 0); err != nil {
		t.Fatal(err)
	}

	// Rule 2: restrict is a single-in single-out R->R box; deleting it
	// splices table directly into project.
	if err := g.DeleteBox(rb.ID); err != nil {
		t.Fatalf("splice delete: %v", err)
	}
	e, ok := g.InputEdge(pj.ID, 0)
	if !ok || e.From != tb.ID {
		t.Fatal("splice did not rewire")
	}

	// A table (no inputs) with connected outputs cannot be deleted.
	if err := g.DeleteBox(tb.ID); err == nil {
		t.Error("deleting a connected source accepted")
	}

	// Rule 1: a sink deletes freely.
	if err := g.DeleteBox(pj.ID); err != nil {
		t.Fatalf("sink delete: %v", err)
	}
	// Now the table has no connected outputs: deletable.
	if err := g.DeleteBox(tb.ID); err != nil {
		t.Fatalf("source delete: %v", err)
	}
	if len(g.Boxes()) != 0 {
		t.Error("boxes remain")
	}
}

func TestDeleteSpliceFansOut(t *testing.T) {
	g, _ := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Stations"})
	rb, _ := g.AddBox("restrict", Params{"pred": "true"})
	d1, _ := g.AddBox("project", Params{"attrs": "id"})
	d2, _ := g.AddBox("project", Params{"attrs": "name"})
	_ = g.Connect(tb.ID, 0, rb.ID, 0)
	_ = g.Connect(rb.ID, 0, d1.ID, 0)
	_ = g.Connect(rb.ID, 0, d2.ID, 0)
	if err := g.DeleteBox(rb.ID); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Box{d1, d2} {
		e, ok := g.InputEdge(d.ID, 0)
		if !ok || e.From != tb.ID {
			t.Fatal("fan-out splice failed")
		}
	}
}

func TestReplaceBox(t *testing.T) {
	g, _ := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Stations"})
	rb, _ := g.AddBox("restrict", Params{"pred": "state = 'LA'"})
	pj, _ := g.AddBox("project", Params{"attrs": "id"})
	_ = g.Connect(tb.ID, 0, rb.ID, 0)
	_ = g.Connect(rb.ID, 0, pj.ID, 0)

	// restrict -> sample: both R -> R.
	nb, err := g.ReplaceBox(rb.ID, "sample", Params{"p": "0.5"})
	if err != nil {
		t.Fatalf("replace: %v", err)
	}
	if nb.Kind != "sample" || nb.ID != rb.ID {
		t.Fatal("replace identity")
	}
	// Connections intact.
	if _, ok := g.InputEdge(pj.ID, 0); !ok {
		t.Fatal("replace lost edges")
	}
	// restrict -> join: different arity, rejected.
	if _, err := g.ReplaceBox(rb.ID, "join", Params{"pred": "true"}); err == nil {
		t.Error("arity-changing replace accepted")
	}
	// restrict -> stitch: different types, rejected.
	if _, err := g.ReplaceBox(rb.ID, "stitch", Params{"n": "1"}); err == nil {
		t.Error("type-changing replace accepted")
	}
}

func TestInsertT(t *testing.T) {
	g, _ := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Stations"})
	pj, _ := g.AddBox("project", Params{"attrs": "id"})
	_ = g.Connect(tb.ID, 0, pj.ID, 0)

	tbox, err := g.InsertT(pj.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// table -> T -> project; T's second output free.
	e1, _ := g.InputEdge(tbox.ID, 0)
	if e1.From != tb.ID {
		t.Fatal("T not fed by table")
	}
	e2, _ := g.InputEdge(pj.ID, 0)
	if e2.From != tbox.ID {
		t.Fatal("project not fed by T")
	}
	if len(g.OutputEdges(tbox.ID)) != 1 {
		t.Fatal("T second output should be free")
	}
	// Free output is connectable: a viewer taps the edge.
	vb, _ := g.AddBox("viewer", nil)
	if err := g.Connect(tbox.ID, 1, vb.ID, 0); err != nil {
		t.Fatalf("viewer on T: %v", err)
	}
	if _, err := g.InsertT(tb.ID, 0); err == nil {
		t.Error("InsertT on unconnected input accepted")
	}
}

func TestMatchingKinds(t *testing.T) {
	g, _ := newTestGraph(t)
	names := g.MatchingKinds([]PortType{RType})
	if len(names) == 0 {
		t.Fatal("no kinds accept an R edge")
	}
	must := map[string]bool{"restrict": false, "project": false, "viewer": false, "overlay": false}
	for _, n := range names {
		if _, ok := must[n]; ok {
			must[n] = true
		}
	}
	for k, seen := range must {
		if !seen {
			t.Errorf("Apply Box menu missing %q for an R edge", k)
		}
	}
	// Two R edges match join.
	names = g.MatchingKinds([]PortType{RType, RType})
	found := false
	for _, n := range names {
		if n == "join" {
			found = true
		}
	}
	if !found {
		t.Error("join not offered for two R edges")
	}
	// A G edge cannot feed restrict.
	for _, n := range g.MatchingKinds([]PortType{GType}) {
		if n == "restrict" {
			t.Error("restrict offered for a G edge")
		}
	}
	if got := g.MatchingKinds(nil); got != nil {
		t.Errorf("empty selection yields %v", got)
	}
}

func TestSetParams(t *testing.T) {
	g, ev := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Stations"})
	rb, _ := g.AddBox("restrict", Params{"pred": "state = 'LA'"})
	_ = g.Connect(tb.ID, 0, rb.ID, 0)

	v1, err := ev.Demand(rb.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	n1 := extLen(t, v1)

	if err := g.SetParams(rb.ID, Params{"pred": "true"}); err != nil {
		t.Fatal(err)
	}
	v2, err := ev.Demand(rb.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if extLen(t, v2) <= n1 {
		t.Error("new predicate did not re-fire")
	}

	// Reshaping a connected box is rejected (a partition's output count
	// depends on params).
	pt, _ := g.AddBox("partition", Params{"preds": "true"})
	_ = g.Connect(rb.ID, 0, pt.ID, 0)
	if err := g.SetParams(pt.ID, Params{"preds": "true;false"}); err == nil {
		t.Error("reshaping a connected box accepted")
	}
	// Unconnected boxes may reshape.
	pt2, _ := g.AddBox("partition", Params{"preds": "true"})
	if err := g.SetParams(pt2.ID, Params{"preds": "true;false"}); err != nil {
		t.Errorf("reshaping unconnected box rejected: %v", err)
	}
	if len(pt2.Out) != 2 {
		t.Error("reshape did not apply")
	}
}

// extLen returns the tuple count behind an R-valued output.
func extLen(t testing.TB, v Value) int {
	t.Helper()
	e, ok := v.(*display.Extended)
	if !ok {
		t.Fatalf("not an extended relation: %T", v)
	}
	return e.Rel.Len()
}
