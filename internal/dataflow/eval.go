package dataflow

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// EvalStats counts work done by an evaluator. It is the per-evaluator
// view of the process-wide internal/obs counters (eval.fires,
// eval.cache_hits, eval.cache_miss, eval.coalesced): every increment here
// is mirrored into the obs registry when obs is enabled, so tests and the
// lazy-vs-eager ablation bench read the struct while the shell's stats
// command and the benchmark harness read the global registry.
//
// Fields are updated under the evaluator's lock; read them only when no
// Eval is in flight.
type EvalStats struct {
	Fires     int // box firings actually executed
	CacheHits int // demands answered from the memo table
	CacheMiss int // demands requiring a firing
	Coalesced int // demands answered by joining another request's in-flight firing
}

// EvalOptions configures one evaluation request. Build it with the
// functional options (WithWorkers, Serial, WithLabel) passed to Eval.
type EvalOptions struct {
	// Workers bounds concurrent box firings within one request. Zero or
	// negative means GOMAXPROCS.
	Workers int
	// Serial forces the single-threaded fallback: the wavefront runs
	// level by level in one goroutine, firing boxes in deterministic
	// order. Useful for debugging and as the determinism baseline.
	Serial bool
	// Label annotates the request's trace span and Result, so concurrent
	// requests can be told apart in a Chrome trace.
	Label string
	// NoPreflight skips the pre-flight validation of the demanded
	// subgraph, restoring the old behavior of reporting only the first
	// plan-time error the scheduler trips over.
	NoPreflight bool
	// NoFusion disables the plan-time fusion of adjacent restrict/project
	// chains into single fused scans (see fuse.go), firing every box
	// individually — the ablation baseline for the query fast path.
	NoFusion bool
}

// EvalOption mutates EvalOptions.
type EvalOption func(*EvalOptions)

// WithWorkers bounds the number of boxes firing concurrently.
func WithWorkers(n int) EvalOption { return func(o *EvalOptions) { o.Workers = n } }

// Serial forces the single-threaded fallback scheduler.
func Serial() EvalOption { return func(o *EvalOptions) { o.Serial = true } }

// WithLabel names the request in traces and results.
func WithLabel(label string) EvalOption { return func(o *EvalOptions) { o.Label = label } }

// WithoutPreflight opts the request out of pre-flight validation: the
// scheduler plans directly and reports only the first problem it finds,
// as it did before the checker existed. Intended for callers that have
// already validated the program (tioga-vet, load-time checks).
func WithoutPreflight() EvalOption { return func(o *EvalOptions) { o.NoPreflight = true } }

// WithoutFusion opts the request out of restrict/project chain fusion,
// firing every box of the chain individually. Useful as the ablation
// baseline and for tests that want per-box memo entries.
func WithoutFusion() EvalOption { return func(o *EvalOptions) { o.NoFusion = true } }

// Request names what to evaluate: output Port of box Box, or — when
// Input is set — whatever feeds input Port of box Box (how a viewer box
// obtains its displayable, and how "a viewer may be installed on any arc
// in a diagram" is realized: any edge's value is demandable).
type Request struct {
	Box   int
	Port  int
	Input bool
}

// Result carries the demanded value plus the work profile of the request:
// how many boxes fired, how many were answered from the memo table, how
// many coalesced onto another request's in-flight firing, and how many
// wavefront levels the demanded subgraph partitioned into.
type Result struct {
	Value     Value
	Fires     int
	CacheHits int
	Coalesced int
	Waves     int
	Label     string
}

// Evaluator runs a graph lazily with memoization. Demanding a box output
// walks upstream, reuses any box whose inputs and parameters are
// unchanged, and fires only stale boxes — the paper's "execution is lazy,
// evaluating only what is required to produce the demanded visualization"
// combined with the immediate-feedback requirement of principle 1 (an
// incremental edit re-fires only the affected suffix of the program).
//
// Independent boxes of the demanded subgraph fire concurrently: the
// evaluator partitions the subgraph into dependency levels and runs each
// level on a bounded worker pool (see wavefront.go). Concurrent Eval
// calls are safe and coalesce: two requests demanding the same stale box
// share one firing through a per-box in-flight latch. Graph mutation must
// not run concurrently with Eval — the same discipline the rest of the
// environment already follows (edits and renders alternate).
type Evaluator struct {
	g  *Graph
	fc *FireContext

	mu     sync.Mutex
	cache  map[int][]Value // memoized outputs per box
	stamps map[int]int64   // dataflow timestamp at which cache entry was computed
	flight map[int]*flight // in-progress firings, for cross-request coalescing

	// Incremental evaluation state (see delta.go). pending queues tuple
	// deltas per table box until a demand applies them; deltaState holds
	// operator-maintained structures (hash-join indexes) per box;
	// deltaTouched records the deltaClock at which a box's memo was last
	// patched or dropped by an incremental pass, so a firing that started
	// before the patch cannot store its pre-delta result over it.
	pending      map[int][]TableDelta
	deltaState   map[int]any
	deltaTouched map[int]int64
	deltaClock   int64

	// Pre-flight validation memo: checked[id] is the (possibly nil)
	// aggregate diagnostic for target id, valid while the graph clock
	// stays at checkClock. Renders demand the same target every frame, so
	// the steady-state cost of pre-flight is one map lookup.
	checked    map[int]error
	checkClock int64

	// Stats is guarded by mu; read it only between evaluations.
	Stats EvalStats
}

// flight is one in-progress box firing. Requests that find a flight for
// the box they need wait on done instead of firing a duplicate.
type flight struct {
	done  chan struct{}
	vals  []Value
	stamp int64
	err   error
}

// NewEvaluator returns an evaluator for g with table access from src (nil
// is allowed for programs without table boxes).
func NewEvaluator(g *Graph, src TableSource) *Evaluator {
	return &Evaluator{
		g:            g,
		fc:           &FireContext{Tables: src, Registry: g.registry},
		cache:        make(map[int][]Value),
		stamps:       make(map[int]int64),
		flight:       make(map[int]*flight),
		pending:      make(map[int][]TableDelta),
		deltaState:   make(map[int]any),
		deltaTouched: make(map[int]int64),
	}
}

// Graph returns the evaluated graph.
func (e *Evaluator) Graph() *Graph { return e.g }

// SetTableSource repoints table resolution at src — typically a
// db.Snap, pinning every subsequent firing to one immutable catalog
// view, or a source that itself swaps snapshots atomically. Like graph
// mutation, it must not run concurrently with Eval; callers serialize
// the swap against in-flight demands (the server holds its session
// lock exclusively while repointing and touching table boxes).
func (e *Evaluator) SetTableSource(src TableSource) { e.fc.Tables = src }

// generationBumper is implemented by displayables (display.Extended,
// Composite, Group) that carry generation stamps. Dropping a memo entry
// bumps the stamps of its displayable values so every downstream
// render-side cache (spatial cull index, display-list memo, wormhole
// interiors) keyed on those generations is retired by the same act that
// retires the dataflow memo — one invalidation spine end to end.
type generationBumper interface {
	BumpGeneration()
}

// bumpDroppedGenerations retires the generation stamps of displayables in
// a dropped memo entry.
func bumpDroppedGenerations(vals []Value) {
	for _, v := range vals {
		if b, ok := v.(generationBumper); ok {
			b.BumpGeneration()
		}
	}
}

// Invalidate drops the memo entry for a box and for every transitive
// dependent (used when an external dependency such as a base table
// changes; graph edits are tracked automatically through versions).
// Without the downstream sweep a dependent whose staleness stamp predates
// the external change would keep serving its stale memo — versions did
// not move, so stamps alone cannot see the invalidation.
func (e *Evaluator) Invalidate(id int) {
	e.InvalidateCtx(context.Background(), id)
}

// InvalidateCtx is Invalidate attributed to the request carried by ctx:
// the sweep records an eval.invalidate span (annotated with the number
// of memo entries it dropped) parented under whatever span caused the
// invalidation, so a trace shows which update fanned out to which
// boxes.
func (e *Evaluator) InvalidateCtx(ctx context.Context, id int) {
	var sp *obs.Span
	if obs.Recording() {
		_, sp = obs.StartSpanCtx(ctx, obs.SpanEvalInvalidate, "box", itoa(id))
	}
	// Reverse adjacency over the current edge set, built once per call.
	dependents := make(map[int][]int)
	for _, edge := range e.g.Edges() {
		dependents[edge.From] = append(dependents[edge.From], edge.To)
	}
	e.mu.Lock()
	seen := make(map[int]bool)
	dropped := 0
	var drop func(int)
	drop = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		if vals, ok := e.cache[id]; ok {
			bumpDroppedGenerations(vals)
			dropped++
		}
		delete(e.cache, id)
		delete(e.stamps, id)
		delete(e.pending, id)
		delete(e.deltaState, id)
		for _, to := range dependents[id] {
			drop(to)
		}
	}
	drop(id)
	e.mu.Unlock()
	obs.Add(obs.EvalInvalidated, int64(dropped))
	sp.Annotate("dropped", itoa(dropped))
	sp.Annotate("swept", itoa(len(seen)))
	sp.End()
}

// InvalidateAll drops the whole memo table.
func (e *Evaluator) InvalidateAll() {
	e.InvalidateAllCtx(context.Background())
}

// InvalidateAllCtx is InvalidateAll attributed to the request carried
// by ctx.
func (e *Evaluator) InvalidateAllCtx(ctx context.Context) {
	var sp *obs.Span
	if obs.Recording() {
		_, sp = obs.StartSpanCtx(ctx, obs.SpanEvalInvalidate, "box", "all")
	}
	e.mu.Lock()
	dropped := len(e.cache)
	for _, vals := range e.cache {
		bumpDroppedGenerations(vals)
	}
	e.cache = make(map[int][]Value)
	e.stamps = make(map[int]int64)
	e.pending = make(map[int][]TableDelta)
	e.deltaState = make(map[int]any)
	e.mu.Unlock()
	obs.Add(obs.EvalInvalidated, int64(dropped))
	sp.Annotate("dropped", itoa(dropped))
	sp.End()
}

// Eval evaluates the request under ctx and returns the demanded value
// with the request's work profile. Cancellation and deadlines are checked
// between box firings: a firing already in progress completes (its result
// stays in the memo for the next request), but no further boxes start.
func (e *Evaluator) Eval(ctx context.Context, req Request, opts ...EvalOption) (Result, error) {
	var o EvalOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}

	target, port := req.Box, req.Port
	var inType PortType // promotion target for Input requests
	b, err := e.g.Box(target)
	if err != nil {
		return Result{Label: o.Label}, err
	}
	if req.Input {
		if port < 0 || port >= len(b.In) {
			return Result{Label: o.Label}, evalPortErr("request", target, port, b.Kind, ErrNoSuchPort)
		}
		edge, ok := e.g.InputEdge(target, port)
		if !ok {
			return Result{Label: o.Label}, evalPortErr("request", target, port, b.Kind, ErrUnconnected)
		}
		inType = b.In[port]
		target, port = edge.From, edge.FromPort
		if b, err = e.g.Box(target); err != nil {
			return Result{Label: o.Label}, err
		}
	}
	if port < 0 || port >= len(b.Out) {
		return Result{Label: o.Label}, evalPortErr("request", target, port, b.Kind, ErrNoSuchPort)
	}

	if !o.NoPreflight {
		if err := e.preflight(target); err != nil {
			return Result{Label: o.Label}, err
		}
	}

	obs.Inc(obs.EvalDemands)
	var sp *obs.Span
	if obs.Recording() {
		// Mint (or inherit) the request's trace identity, then hang the
		// whole evaluation under one eval.demand span: waves, workers,
		// and fires all record parent links back to it.
		label := o.Label
		if label == "" {
			label = "eval"
		}
		ctx, _ = obs.EnsureTrace(ctx, label)
		args := []string{"box", itoa(target), "kind", b.Kind}
		if o.Label != "" {
			args = append(args, "label", o.Label)
		}
		ctx, sp = obs.StartSpanCtx(ctx, obs.SpanEvalDemand, args...)
	}
	t := obs.StartTimer(obs.EvalDemandNS)
	vals, res, err := e.evalTarget(ctx, target, o)
	t.Stop()
	sp.End()
	res.Label = o.Label
	if err != nil {
		return res, err
	}
	v := vals[port]
	if v == nil {
		return res, evalPortErr("request", target, port, b.Kind, ErrNoData)
	}
	if req.Input {
		pv, err := PromoteValue(v, inType)
		if err != nil {
			return res, evalPortErr("promote", req.Box, req.Port, "", err)
		}
		v = pv
	}
	res.Value = v
	return res, nil
}

// preflight validates the demanded subgraph before any box fires,
// aggregating every plan-time problem — cycles, unconnected inputs,
// type-incompatible edges, unknown kinds, bad parameters — into one
// *Error (errors.Is sees each sentinel cause). Verdicts are memoized per
// target against the graph's mutation clock, so repeated demands on an
// unchanged program cost a map lookup.
func (e *Evaluator) preflight(target int) error {
	g := e.g
	e.mu.Lock()
	if e.checked == nil || e.checkClock != g.Clock() {
		e.checked = make(map[int]error)
		e.checkClock = g.Clock()
	}
	if err, ok := e.checked[target]; ok {
		e.mu.Unlock()
		return err
	}
	e.mu.Unlock()

	err := ValidateTarget(g, target).AsError()

	e.mu.Lock()
	if e.checkClock == g.Clock() {
		e.checked[target] = err
	}
	e.mu.Unlock()
	return err
}

// EvaluateAll eagerly fires every box in the program, the strategy of
// compile-and-run systems like the original Tioga. It exists for the
// lazy-vs-eager ablation benchmark and for whole-program validation.
func (e *Evaluator) EvaluateAll() error {
	var o EvalOptions
	o.Serial = true
	o.Workers = 1
	o.NoFusion = true // eager mode wants a memo entry for every box
	for _, b := range e.g.Boxes() {
		if _, _, err := e.evalTarget(context.Background(), b.ID, o); err != nil {
			return err
		}
	}
	return nil
}

// Demand evaluates the given output of box id and returns its value.
//
// Deprecated: use Eval, which adds cancellation, parallel scheduling, and
// a structured result. Demand remains as a thin wrapper for existing
// callers.
func (e *Evaluator) Demand(id, port int) (Value, error) {
	res, err := e.Eval(context.Background(), Request{Box: id, Port: port})
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// DemandInput evaluates whatever feeds input (id, port).
//
// Deprecated: use Eval with Request{Input: true}. DemandInput remains as
// a thin wrapper for existing callers.
func (e *Evaluator) DemandInput(id, port int) (Value, error) {
	res, err := e.Eval(context.Background(), Request{Box: id, Port: port, Input: true})
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// Typecheck walks every edge and verifies compatibility, reporting all
// errors. The editor enforces types at connect time, so this matters for
// programs loaded from storage or built by tests.
func Typecheck(g *Graph) []error {
	var errs []error
	for _, e := range g.Edges() {
		fb, err := g.Box(e.From)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		tb, err := g.Box(e.To)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if e.FromPort >= len(fb.Out) || e.ToPort >= len(tb.In) {
			errs = append(errs, evalPortErr("typecheck", e.To, e.ToPort, tb.Kind, ErrNoSuchPort))
			continue
		}
		if !Compatible(fb.Out[e.FromPort], tb.In[e.ToPort]) {
			errs = append(errs, evalPortErr("typecheck", e.To, e.ToPort, tb.Kind,
				typeError(fb.Out[e.FromPort], tb.In[e.ToPort])))
		}
	}
	return errs
}
