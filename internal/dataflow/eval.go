package dataflow

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
)

// EvalStats counts work done by an evaluator. It is the per-evaluator
// view of the process-wide internal/obs counters (eval.fires,
// eval.cache_hits, eval.cache_miss): every increment here is mirrored
// into the obs registry when obs is enabled, so tests and the
// lazy-vs-eager ablation bench read the struct while the shell's stats
// command and the benchmark harness read the global registry.
type EvalStats struct {
	Fires     int // box firings actually executed
	CacheHits int // demands answered from the memo table
	CacheMiss int // demands requiring a firing
}

// Evaluator runs a graph lazily with memoization. Demanding a box output
// walks upstream, reuses any box whose inputs and parameters are
// unchanged, and fires only stale boxes — the paper's "execution is lazy,
// evaluating only what is required to produce the demanded visualization"
// combined with the immediate-feedback requirement of principle 1 (an
// incremental edit re-fires only the affected suffix of the program).
type Evaluator struct {
	g      *Graph
	fc     *FireContext
	cache  map[int][]Value // memoized outputs per box
	stamps map[int]int64   // dataflow timestamp at which cache entry was computed
	Stats  EvalStats
}

// NewEvaluator returns an evaluator for g with table access from src (nil
// is allowed for programs without table boxes).
func NewEvaluator(g *Graph, src TableSource) *Evaluator {
	return &Evaluator{
		g:      g,
		fc:     &FireContext{Tables: src, Registry: g.registry},
		cache:  make(map[int][]Value),
		stamps: make(map[int]int64),
	}
}

// Graph returns the evaluated graph.
func (e *Evaluator) Graph() *Graph { return e.g }

// Invalidate drops the memo entry for one box (used when an external
// dependency such as a base table changes; graph edits are tracked
// automatically through versions).
func (e *Evaluator) Invalidate(id int) {
	delete(e.cache, id)
	delete(e.stamps, id)
}

// InvalidateAll drops the whole memo table.
func (e *Evaluator) InvalidateAll() {
	e.cache = make(map[int][]Value)
	e.stamps = make(map[int]int64)
}

// Demand evaluates the given output of box id and returns its value. This
// is what a viewer calls: only the transitive inputs of the demanded box
// are touched.
func (e *Evaluator) Demand(id, port int) (Value, error) {
	b, err := e.g.Box(id)
	if err != nil {
		return nil, err
	}
	if port < 0 || port >= len(b.Out) {
		return nil, fmt.Errorf("dataflow: box %d (%s) has no output %d", id, b.Kind, port)
	}
	obs.Inc(obs.EvalDemands)
	var sp *obs.Span
	if obs.Tracing() {
		sp = obs.StartSpan("eval.demand", "box", strconv.Itoa(id), "kind", b.Kind)
	}
	t := obs.StartTimer(obs.EvalDemandNS)
	vals, _, err := e.demand(id, make(map[int]bool))
	t.Stop()
	sp.End()
	if err != nil {
		return nil, err
	}
	return vals[port], nil
}

// DemandInput evaluates whatever feeds input (id, port) — how a viewer box
// obtains its displayable, and how "a viewer may be installed on any arc
// in a diagram" is realized: any edge's value is demandable.
func (e *Evaluator) DemandInput(id, port int) (Value, error) {
	edge, ok := e.g.InputEdge(id, port)
	if !ok {
		return nil, fmt.Errorf("dataflow: input %d of box %d is not connected", port, id)
	}
	b, err := e.g.Box(id)
	if err != nil {
		return nil, err
	}
	v, err := e.Demand(edge.From, edge.FromPort)
	if err != nil {
		return nil, err
	}
	return PromoteValue(v, b.In[port])
}

// demand returns all outputs of a box plus the staleness stamp: the
// maximum version along the box's transitive inputs. A memo entry is
// reusable iff it was computed at a stamp >= the current one.
func (e *Evaluator) demand(id int, active map[int]bool) ([]Value, int64, error) {
	if active[id] {
		return nil, 0, fmt.Errorf("dataflow: cycle through box %d", id)
	}
	active[id] = true
	defer delete(active, id)

	b, err := e.g.Box(id)
	if err != nil {
		return nil, 0, err
	}

	stamp := e.g.Version(id)
	inVals := make([]Value, len(b.In))
	for port := range b.In {
		edge, ok := e.g.InputEdge(id, port)
		if !ok {
			return nil, 0, fmt.Errorf("dataflow: input %d of box %d (%s) is not connected", port, id, b.Kind)
		}
		upVals, upStamp, err := e.demand(edge.From, active)
		if err != nil {
			return nil, 0, err
		}
		if upStamp > stamp {
			stamp = upStamp
		}
		v := upVals[edge.FromPort]
		if v == nil {
			return nil, 0, fmt.Errorf("dataflow: box %d (%s) produced no data on output %d demanded by box %d",
				edge.From, "upstream", edge.FromPort, id)
		}
		pv, err := PromoteValue(v, b.In[port])
		if err != nil {
			return nil, 0, err
		}
		inVals[port] = pv
	}

	if cached, ok := e.cache[id]; ok && e.stamps[id] >= stamp {
		e.Stats.CacheHits++
		obs.Inc(obs.EvalCacheHits)
		return cached, e.stamps[id], nil
	}
	e.Stats.CacheMiss++
	obs.Inc(obs.EvalCacheMiss)

	k, err := e.g.registry.Kind(b.Kind)
	if err != nil {
		return nil, 0, err
	}
	var sp *obs.Span
	if obs.Tracing() {
		sp = obs.StartSpan("eval.fire", "box", strconv.Itoa(id), "kind", b.Kind)
	}
	t := obs.StartTimer(obs.EvalFireNS)
	out, err := k.Fire(e.fc, b.Params, inVals)
	t.Stop()
	sp.End()
	if err != nil {
		err = fmt.Errorf("dataflow: box %d (%s): %w", id, b.Kind, err)
		obs.RecordError(obs.EvalErrors, err)
		return nil, 0, err
	}
	if len(out) != len(b.Out) {
		return nil, 0, fmt.Errorf("dataflow: box %d (%s) fired %d outputs, declared %d", id, b.Kind, len(out), len(b.Out))
	}
	e.Stats.Fires++
	obs.Inc(obs.EvalFires)
	e.cache[id] = out
	e.stamps[id] = stamp
	return out, stamp, nil
}

// EvaluateAll eagerly fires every box in the program, the strategy of
// compile-and-run systems like the original Tioga. It exists for the
// lazy-vs-eager ablation benchmark and for whole-program validation.
func (e *Evaluator) EvaluateAll() error {
	for _, b := range e.g.Boxes() {
		if _, _, err := e.demand(b.ID, make(map[int]bool)); err != nil {
			return err
		}
	}
	return nil
}

// Typecheck walks every edge and verifies compatibility, reporting all
// errors. The editor enforces types at connect time, so this matters for
// programs loaded from storage or built by tests.
func Typecheck(g *Graph) []error {
	var errs []error
	for _, e := range g.Edges() {
		fb, err := g.Box(e.From)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		tb, err := g.Box(e.To)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if e.FromPort >= len(fb.Out) || e.ToPort >= len(tb.In) {
			errs = append(errs, fmt.Errorf("dataflow: edge %s references missing port", e))
			continue
		}
		if !Compatible(fb.Out[e.FromPort], tb.In[e.ToPort]) {
			errs = append(errs, fmt.Errorf("dataflow: type error on edge %s: %s -> %s",
				e, fb.Out[e.FromPort], tb.In[e.ToPort]))
		}
	}
	return errs
}
