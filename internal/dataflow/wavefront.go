package dataflow

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// This file is the demand-driven wavefront scheduler behind
// Evaluator.Eval. A request plans the demanded subgraph once —
// topological levels plus staleness stamps, both derivable from the
// graph alone — then executes level by level: every box in a level
// depends only on earlier levels, so a level's stale boxes can fire
// concurrently on a bounded worker pool. The memo cache stays correct
// under concurrency through per-box in-flight latches: a request that
// needs a box another request is already firing waits for that firing
// (counted as eval.coalesced) instead of firing a duplicate.

// planNode is one box of the demanded subgraph.
type planNode struct {
	id    int
	box   *Box
	level int   // 1 + max level of input producers; sources are level 0
	stamp int64 // max version along the node's transitive inputs (incl. itself)
	deps  []Edge
}

// plan is the demanded subgraph partitioned into dependency levels.
// fused and inlined are populated by the fusion pass (fuse.go): fused
// maps a chain tail's id to the steps its firing executes as one scan,
// inlined marks the chain interiors the wavefront must skip.
type plan struct {
	nodes   map[int]*planNode
	levels  [][]*planNode
	fused   map[int]*fusedChain
	inlined map[int]bool
}

// buildPlan walks upstream from target, detecting cycles and dangling
// inputs, and partitions the subgraph into levels. Stamps fall out of the
// same walk: a box's staleness stamp is the max version over its
// transitive input closure, comparable across boxes because the graph's
// mutation clock is global.
func (e *Evaluator) buildPlan(target int) (*plan, error) {
	p := &plan{nodes: make(map[int]*planNode)}
	active := make(map[int]bool)
	var visit func(id int) (*planNode, error)
	visit = func(id int) (*planNode, error) {
		if n, ok := p.nodes[id]; ok {
			return n, nil
		}
		if active[id] {
			return nil, evalErr("plan", id, "", ErrCycle)
		}
		active[id] = true
		defer delete(active, id)

		b, err := e.g.Box(id)
		if err != nil {
			return nil, err
		}
		n := &planNode{id: id, box: b, stamp: e.g.Version(id)}
		for port := range b.In {
			edge, ok := e.g.InputEdge(id, port)
			if !ok {
				return nil, evalPortErr("plan", id, port, b.Kind, ErrUnconnected)
			}
			up, err := visit(edge.From)
			if err != nil {
				return nil, err
			}
			if up.stamp > n.stamp {
				n.stamp = up.stamp
			}
			if up.level+1 > n.level {
				n.level = up.level + 1
			}
			n.deps = append(n.deps, edge)
		}
		p.nodes[id] = n
		for len(p.levels) <= n.level {
			p.levels = append(p.levels, nil)
		}
		p.levels[n.level] = append(p.levels[n.level], n)
		return n, nil
	}
	if _, err := visit(target); err != nil {
		return nil, err
	}
	return p, nil
}

// evalTarget plans and executes the subgraph demanded by box target,
// returning all of the target's outputs plus the request's work profile.
func (e *Evaluator) evalTarget(ctx context.Context, target int, o EvalOptions) ([]Value, Result, error) {
	var res Result
	p, err := e.buildPlan(target)
	if err != nil {
		return nil, res, err
	}
	if !o.NoFusion && !fusionOff.Load() {
		e.fuseChains(p, target)
	}
	e.applyDeltas(ctx, p)
	res.Waves = len(p.levels)
	obs.Add(obs.EvalWaves, int64(len(p.levels)))

	rs := &runStats{}
	for w, level := range p.levels {
		if err := ctx.Err(); err != nil {
			obs.Inc(obs.EvalCancels)
			rs.fill(&res)
			return nil, res, err
		}
		wctx := ctx
		var sp *obs.Span
		if obs.Recording() {
			wctx, sp = obs.StartSpanCtx(ctx, obs.SpanEvalWave,
				"wave", strconv.Itoa(w), "boxes", strconv.Itoa(len(level)))
		}
		err := e.runLevel(wctx, p, level, o, rs)
		sp.End()
		if err != nil {
			rs.fill(&res)
			return nil, res, err
		}
	}
	rs.fill(&res)

	n := p.nodes[target]
	e.mu.Lock()
	vals := e.cache[target]
	e.mu.Unlock()
	if vals == nil {
		// The target resolved but its entry vanished (an Invalidate racing
		// this request); resolve it once more directly.
		var err error
		if vals, _, err = e.resolve(ctx, p, n, o, rs); err != nil {
			rs.fill(&res)
			return nil, res, err
		}
	}
	return vals, res, nil
}

// runStats accumulates one request's work profile; its own lock keeps
// workers from contending on the evaluator lock just to count.
type runStats struct {
	mu                          sync.Mutex
	fires, cacheHits, coalesced int
}

func (rs *runStats) fill(res *Result) {
	rs.mu.Lock()
	res.Fires, res.CacheHits, res.Coalesced = rs.fires, rs.cacheHits, rs.coalesced
	rs.mu.Unlock()
}

// runLevel resolves every node of one wavefront level, concurrently when
// the level is wide and the request allows it.
func (e *Evaluator) runLevel(ctx context.Context, p *plan, level []*planNode, o EvalOptions, rs *runStats) error {
	workers := o.Workers
	if o.Serial {
		workers = 1
	}
	if workers > len(level) {
		workers = len(level)
	}
	if workers <= 1 || len(level) == 1 {
		for _, n := range level {
			if p.inlined[n.id] {
				continue // fused into its downstream consumer's firing
			}
			if err := ctx.Err(); err != nil {
				obs.Inc(obs.EvalCancels)
				return err
			}
			if _, _, err := e.resolve(ctx, p, n, o, rs); err != nil {
				return err
			}
		}
		return nil
	}

	// Bounded fan-out: workers pull node indexes from a shared channel;
	// the first error cancels the remaining pulls.
	idx := make(chan int)
	errc := make(chan error, workers)
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	recording := obs.Recording()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := lctx
			if recording {
				// Track 1 is the request; workers get tracks 2+w. The
				// worker span inherits the wave's trace through lctx, and
				// every fire this worker resolves parents under it.
				var sp *obs.Span
				wctx, sp = obs.StartSpanCtxOn(lctx, int64(2+w), obs.SpanEvalWorker, "worker", strconv.Itoa(w))
				defer sp.End()
			}
			for i := range idx {
				if wctx.Err() != nil {
					continue // drain; an error or cancellation already won
				}
				if _, _, err := e.resolve(wctx, p, level[i], o, rs); err != nil {
					errc <- err
					cancel()
				}
			}
		}(w)
	}
	for i := range level {
		if p.inlined[level[i].id] {
			continue // fused into its downstream consumer's firing
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(errc)
	// Prefer a real failure over a secondary cancellation another worker
	// observed after the first error already tore the level down.
	var first error
	for err := range errc {
		if first == nil || (errors.Is(first, context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = err
		}
	}
	if first != nil {
		return first
	}
	if err := ctx.Err(); err != nil {
		obs.Inc(obs.EvalCancels)
		return err
	}
	return nil
}

// resolve produces box n's outputs: from the memo table when fresh, by
// joining another request's in-flight firing, or by firing the box. It
// returns the outputs and the stamp they were computed at.
func (e *Evaluator) resolve(ctx context.Context, p *plan, n *planNode, o EvalOptions, rs *runStats) ([]Value, int64, error) {
	for {
		e.mu.Lock()
		if vals, ok := e.cache[n.id]; ok && e.stamps[n.id] >= n.stamp {
			stamp := e.stamps[n.id]
			e.Stats.CacheHits++
			e.mu.Unlock()
			rs.mu.Lock()
			rs.cacheHits++
			rs.mu.Unlock()
			obs.Inc(obs.EvalCacheHits)
			return vals, stamp, nil
		}
		if fl, ok := e.flight[n.id]; ok {
			// Another request is already firing this box: wait for it.
			e.mu.Unlock()
			select {
			case <-ctx.Done():
				obs.Inc(obs.EvalCancels)
				return nil, 0, ctx.Err()
			case <-fl.done:
			}
			if fl.err != nil {
				return nil, 0, fl.err
			}
			if fl.stamp >= n.stamp {
				e.mu.Lock()
				e.Stats.Coalesced++
				e.mu.Unlock()
				rs.mu.Lock()
				rs.coalesced++
				rs.mu.Unlock()
				obs.Inc(obs.EvalCoalesced)
				return fl.vals, fl.stamp, nil
			}
			continue // the flight computed an older stamp; retry
		}
		// This request fires the box: register the latch and release the
		// lock for the (possibly long) firing.
		fl := &flight{done: make(chan struct{})}
		e.flight[n.id] = fl
		e.Stats.CacheMiss++
		startClock := e.deltaClock
		e.mu.Unlock()
		obs.Inc(obs.EvalCacheMiss)

		vals, stamp, err := e.fire(ctx, p, n, o, rs)

		e.mu.Lock()
		if err == nil {
			// A delta pass that patched (or dropped) this box mid-firing
			// has already advanced the memo past what this firing read;
			// storing the pre-delta result would regress it forever, since
			// stamps never move. Serve the firing's value to this request
			// but leave the memo alone.
			if e.deltaTouched[n.id] <= startClock {
				e.cache[n.id] = vals
				e.stamps[n.id] = stamp
				delete(e.deltaState, n.id)
				if n.box.Kind == "table" {
					// A fresh table firing read the current source; any
					// queued deltas lead up to (at most) that state.
					delete(e.pending, n.id)
				}
			}
			e.Stats.Fires++
		}
		delete(e.flight, n.id)
		e.mu.Unlock()
		fl.vals, fl.stamp, fl.err = vals, stamp, err
		close(fl.done)
		if err != nil {
			return nil, 0, err
		}
		obs.Inc(obs.EvalFires)
		rs.mu.Lock()
		rs.fires++
		rs.mu.Unlock()
		return vals, stamp, nil
	}
}

// fire gathers a box's promoted inputs and executes its kind. Inputs come
// from the memo table; a missing producer entry (an Invalidate racing the
// request, or resolve called outside a wavefront) recurses upstream. A
// chain tail the fusion pass rewrote executes its whole chain instead.
func (e *Evaluator) fire(ctx context.Context, p *plan, n *planNode, o EvalOptions, rs *runStats) ([]Value, int64, error) {
	if ch := p.fused[n.id]; ch != nil {
		return e.fireFused(ctx, p, n, ch, o, rs)
	}
	b := n.box
	stamp := n.stamp
	inVals := make([]Value, len(b.In))
	for port, edge := range n.deps {
		// The wavefront resolved producers in earlier levels, so the memo
		// read is the common case; it is not a demand, so it does not count
		// as a cache hit. The resolve fallback covers an Invalidate racing
		// this request and resolve calls outside a wavefront.
		var upVals []Value
		var upStamp int64
		if pn := p.nodes[edge.From]; pn != nil {
			upVals, upStamp = e.cached(pn.id, pn.stamp)
		}
		if upVals == nil {
			var err error
			upVals, upStamp, err = e.resolveProducer(ctx, p, edge.From, o, rs)
			if err != nil {
				return nil, 0, err
			}
		}
		if upStamp > stamp {
			stamp = upStamp
		}
		if edge.FromPort >= len(upVals) || upVals[edge.FromPort] == nil {
			return nil, 0, evalPortErr("fire", edge.From, edge.FromPort, "", fmt.Errorf("%w (demanded by box %d)", ErrNoData, n.id))
		}
		pv, err := PromoteValue(upVals[edge.FromPort], b.In[port])
		if err != nil {
			return nil, 0, evalPortErr("promote", n.id, port, b.Kind, err)
		}
		inVals[port] = pv
	}

	k, err := e.g.registry.Kind(b.Kind)
	if err != nil {
		return nil, 0, err
	}
	var sp *obs.Span
	if obs.Recording() {
		_, sp = obs.StartSpanCtx(ctx, obs.SpanEvalFire, "box", strconv.Itoa(n.id), "kind", b.Kind)
	}
	t := obs.StartTimer(obs.EvalFireNS)
	out, err := k.Fire(e.fc, b.Params, inVals)
	t.Stop()
	sp.End()
	if err != nil {
		werr := evalErr("fire", n.id, b.Kind, err)
		obs.RecordError(obs.EvalErrors, werr)
		return nil, 0, werr
	}
	if len(out) != len(b.Out) {
		return nil, 0, evalErr("fire", n.id, b.Kind,
			fmt.Errorf("fired %d outputs, declared %d", len(out), len(b.Out)))
	}
	return out, stamp, nil
}

// cached returns the memo entry for id when it is at least as fresh as
// stamp, without touching any counters.
func (e *Evaluator) cached(id int, stamp int64) ([]Value, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	vals, ok := e.cache[id]
	if !ok || e.stamps[id] < stamp {
		return nil, 0
	}
	return vals, e.stamps[id]
}

// resolveProducer returns a producer's outputs during input gathering:
// straight from the memo when fresh (the common case — the wavefront
// resolved it in an earlier level), otherwise by resolving it, reusing
// the plan's node when available or planning the producer on the fly.
func (e *Evaluator) resolveProducer(ctx context.Context, p *plan, id int, o EvalOptions, rs *runStats) ([]Value, int64, error) {
	var n *planNode
	if p != nil {
		n = p.nodes[id]
	}
	if n == nil {
		// An on-the-fly sub-plan never fuses: the demanded box itself must
		// land in the memo table.
		sub, err := e.buildPlan(id)
		if err != nil {
			return nil, 0, err
		}
		n = sub.nodes[id]
		p = sub
	}
	return e.resolve(ctx, p, n, o, rs)
}

// itoa is strconv.Itoa, aliased to keep trace call sites compact.
func itoa(i int) string { return strconv.Itoa(i) }

// typeError describes an edge whose port types no longer line up.
func typeError(from, to PortType) error {
	return fmt.Errorf("type error: %s does not satisfy %s", from, to)
}
