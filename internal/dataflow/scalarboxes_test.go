package dataflow

import (
	"testing"

	"repro/internal/types"
)

func TestConstBox(t *testing.T) {
	g, ev := newTestGraph(t)
	c, err := g.AddBox("const", Params{"type": "float", "value": "2.5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Out) != 1 || !c.Out[0].Equal(ScalarType(types.Float)) {
		t.Fatalf("const port = %v", c.Out)
	}
	v, err := ev.Demand(c.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sv := v.(types.Value); sv.Float() != 2.5 {
		t.Fatalf("const = %s", sv)
	}
	// Bad type or value.
	if _, err := g.AddBox("const", Params{"type": "blob", "value": "1"}); err == nil {
		t.Error("bad type accepted")
	}
	bad, _ := g.AddBox("const", Params{"type": "int", "value": "xyz"})
	if _, err := ev.Demand(bad.ID, 0); err == nil {
		t.Error("unparsable value accepted")
	}
}

func TestThresholdBoxWithRuntimeParameter(t *testing.T) {
	g, ev := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Stations"})
	cv, _ := g.AddBox("const", Params{"type": "float", "value": "100"})
	th, _ := g.AddBox("threshold", Params{"attr": "altitude", "op": "<="})
	if err := g.Connect(tb.ID, 0, th.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(cv.ID, 0, th.ID, 1); err != nil {
		t.Fatal(err)
	}
	v, err := ev.Demand(th.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := demandR(t, ev, th.ID)
	_ = v
	for i := 0; i < e.Rel.Len(); i++ {
		alt, _ := e.Rel.Row(i).Attr("altitude").AsFloat()
		if alt > 100 {
			t.Fatalf("threshold leaked altitude %g", alt)
		}
	}

	// Turning the dial re-fires: the runtime parameter is live.
	if err := g.SetParams(cv.ID, Params{"type": "float", "value": "10"}); err != nil {
		t.Fatal(err)
	}
	e2 := demandR(t, ev, th.ID)
	if e2.Rel.Len() >= e.Rel.Len() {
		t.Errorf("tighter threshold kept %d >= %d tuples", e2.Rel.Len(), e.Rel.Len())
	}

	// A scalar of the wrong kind is a connect-time type error.
	ci, _ := g.AddBox("const", Params{"type": "text", "value": "x"})
	th2, _ := g.AddBox("threshold", Params{"attr": "altitude"})
	if err := g.Connect(ci.ID, 0, th2.ID, 1); err == nil {
		t.Error("text scalar into float port accepted")
	}
	// A scalar cannot feed a displayable port.
	rb, _ := g.AddBox("restrict", Params{"pred": "true"})
	if err := g.Connect(cv.ID, 0, rb.ID, 0); err == nil {
		t.Error("scalar into R port accepted")
	}
}

func TestSamplePBox(t *testing.T) {
	g, ev := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Observations"})
	cv, _ := g.AddBox("const", Params{"type": "float", "value": "0.25"})
	sp, _ := g.AddBox("samplep", Params{"seed": "5"})
	_ = g.Connect(tb.ID, 0, sp.ID, 0)
	_ = g.Connect(cv.ID, 0, sp.ID, 1)
	e := demandR(t, ev, sp.ID)
	all := demandR(t, ev, tb.ID)
	frac := float64(e.Rel.Len()) / float64(all.Rel.Len())
	if frac < 0.1 || frac > 0.4 {
		t.Errorf("samplep kept fraction %.2f, want ~0.25", frac)
	}
	// Out-of-range probability errors at fire time.
	if err := g.SetParams(cv.ID, Params{"type": "float", "value": "1.5"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Demand(sp.ID, 0); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestCountBox(t *testing.T) {
	g, ev := newTestGraph(t)
	tb, _ := g.AddBox("table", Params{"name": "Stations"})
	ct, _ := g.AddBox("count", nil)
	_ = g.Connect(tb.ID, 0, ct.ID, 0)
	v, err := ev.Demand(ct.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := v.(types.Value).Int(); n != 40 {
		t.Fatalf("count = %d", n)
	}
	// T box over a scalar edge: the type parameter supports scalars.
	tt, err := g.AddBox("t", Params{"type": "scalar:int"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(ct.ID, 0, tt.ID, 0); err != nil {
		t.Fatal(err)
	}
	v, err = ev.Demand(tt.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.(types.Value).Int() != 40 {
		t.Fatal("T over scalar lost the value")
	}
}
