// Package dataflow implements the boxes-and-arrows programs of Tioga-2
// (Section 2): typed boxes connected by edges, with lazy demand-driven
// evaluation ("execution is lazy, evaluating only what is required to
// produce the demanded visualization"), multi-output boxes for control
// flow, T boxes, the Delete/Replace Box legality rules of Section 4.1, and
// Encapsulate with holes — the graphical analogs of procedures and macros.
package dataflow

import (
	"fmt"

	"repro/internal/display"
	"repro/internal/types"
)

// PortType is the type of a box input or output: either a displayable
// kind (R, C, G) or a scalar runtime-parameter type.
type PortType struct {
	Display display.Kind
	Scalar  types.Kind // meaningful only when Display == ScalarKind
}

// Displayable port types.
var (
	RType = PortType{Display: display.RKind}
	CType = PortType{Display: display.CKind}
	GType = PortType{Display: display.GKind}
)

// ScalarType returns the port type for a scalar of kind k.
func ScalarType(k types.Kind) PortType {
	return PortType{Display: display.ScalarKind, Scalar: k}
}

// String implements fmt.Stringer.
func (t PortType) String() string {
	if t.Display == display.ScalarKind {
		return "scalar:" + t.Scalar.String()
	}
	return t.Display.String()
}

// Compatible reports whether a value of type out may flow into a port of
// type in. Displayable types promote upward through the equivalences
// R = Composite(R) and C = Group(C): R feeds C or G ports, C feeds G
// ports. Scalars must match exactly.
func Compatible(out, in PortType) bool {
	if out.Display == display.ScalarKind || in.Display == display.ScalarKind {
		return out.Display == display.ScalarKind && in.Display == display.ScalarKind &&
			out.Scalar == in.Scalar
	}
	return out.Display <= in.Display
}

// Equal reports exact port type equality, the requirement for Replace Box
// and for splicing around a deleted box.
func (t PortType) Equal(u PortType) bool { return t == u }

// Value is what flows along an edge: a displayable or a scalar.
type Value interface{}

// ValueType returns the port type of a runtime value.
func ValueType(v Value) (PortType, error) {
	switch v := v.(type) {
	case *display.Extended:
		return RType, nil
	case *display.Composite:
		return CType, nil
	case *display.Group:
		return GType, nil
	case types.Value:
		return ScalarType(v.Kind()), nil
	case nil:
		return PortType{}, fmt.Errorf("dataflow: nil value on edge: %w", ErrNoData)
	}
	return PortType{}, fmt.Errorf("dataflow: unknown value type %T: %w", v, ErrPortType)
}

// PromoteValue coerces a displayable value upward to satisfy a port of
// type want (R->C, C->G, R->G). Scalars pass through unchanged.
func PromoteValue(v Value, want PortType) (Value, error) {
	got, err := ValueType(v)
	if err != nil {
		return nil, err
	}
	if !Compatible(got, want) {
		return nil, fmt.Errorf("dataflow: cannot promote %s value to %s port: %w", got, want, ErrPortType)
	}
	if want.Display == display.ScalarKind {
		return v, nil
	}
	switch want.Display {
	case display.RKind:
		return v, nil
	case display.CKind:
		if e, ok := v.(*display.Extended); ok {
			return display.FromR(e), nil
		}
		return v, nil
	case display.GKind:
		switch d := v.(type) {
		case *display.Extended:
			return display.FromC(display.FromR(d)), nil
		case *display.Composite:
			return display.FromC(d), nil
		default:
			return v, nil
		}
	}
	return v, nil
}
