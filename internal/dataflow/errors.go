package dataflow

import (
	"errors"
	"fmt"
)

// Sentinel causes for evaluator errors. They sit behind an *Error wrapper
// carrying the box attribution, so callers test with errors.Is:
//
//	if errors.Is(err, dataflow.ErrUnconnected) { ... }
var (
	// ErrCycle is returned when evaluation reaches a box already on the
	// demand path — a cyclic program, which only a corrupt load can
	// produce (Connect refuses cycles).
	ErrCycle = errors.New("cycle in dataflow graph")
	// ErrUnconnected is returned when a demanded box has an input with no
	// incoming edge.
	ErrUnconnected = errors.New("input not connected")
	// ErrNoSuchPort is returned when a request names a port the box does
	// not declare.
	ErrNoSuchPort = errors.New("no such port")
	// ErrNoData is returned when an upstream firing produced no value on
	// a demanded output.
	ErrNoData = errors.New("no data on output")
)

// Error is the typed evaluation error: which box failed, on which port,
// during which phase, and why. It wraps the cause, so errors.Is and
// errors.As see through it, and the evaluator returns it instead of bare
// formatted strings — callers can route on the box identity (highlight
// the failing box on the program canvas) rather than parse messages.
type Error struct {
	Box  int    // box id the failure is attributed to
	Port int    // port involved, or -1 when not port-specific
	Kind string // box kind when known, e.g. "restrict"
	Op   string // evaluation phase: "plan", "fire", "promote", "request"
	Err  error  // underlying cause
}

// Error implements the error interface.
func (e *Error) Error() string {
	kind := e.Kind
	if kind == "" {
		kind = "?"
	}
	if e.Port >= 0 {
		return fmt.Sprintf("dataflow: %s box %d (%s) port %d: %v", e.Op, e.Box, kind, e.Port, e.Err)
	}
	return fmt.Sprintf("dataflow: %s box %d (%s): %v", e.Op, e.Box, kind, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// evalErr builds an *Error with no specific port.
func evalErr(op string, box int, kind string, cause error) *Error {
	return &Error{Box: box, Port: -1, Kind: kind, Op: op, Err: cause}
}

// evalPortErr builds an *Error attributed to one port.
func evalPortErr(op string, box, port int, kind string, cause error) *Error {
	return &Error{Box: box, Port: port, Kind: kind, Op: op, Err: cause}
}
