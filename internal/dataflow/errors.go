package dataflow

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel causes for evaluator errors. They sit behind an *Error wrapper
// carrying the box attribution, so callers test with errors.Is:
//
//	if errors.Is(err, dataflow.ErrUnconnected) { ... }
var (
	// ErrCycle is returned when evaluation reaches a box already on the
	// demand path — a cyclic program, which only a corrupt load can
	// produce (Connect refuses cycles).
	ErrCycle = errors.New("cycle in dataflow graph")
	// ErrUnconnected is returned when a demanded box has an input with no
	// incoming edge.
	ErrUnconnected = errors.New("input not connected")
	// ErrNoSuchPort is returned when a request names a port the box does
	// not declare.
	ErrNoSuchPort = errors.New("no such port")
	// ErrNoData is returned when an upstream firing produced no value on
	// a demanded output.
	ErrNoData = errors.New("no data on output")
	// ErrPortType is returned when an edge's source output type cannot
	// flow into its destination input type (no R->C->G promotion applies).
	// Connect refuses such edges, so only a corrupt load can produce one.
	ErrPortType = errors.New("port type mismatch")
	// ErrDanglingEdge is returned when an edge references a box or port
	// that does not exist — structural corruption in serialized data.
	ErrDanglingEdge = errors.New("edge references missing box or port")
	// ErrDuplicateInput is returned when serialized data wires two edges
	// into the same input port.
	ErrDuplicateInput = errors.New("input connected twice")
	// ErrUnknownKind is returned when a box names a kind the registry
	// does not provide.
	ErrUnknownKind = errors.New("unknown box kind")
	// ErrBadParam is returned when a box's parameters fail its kind's
	// port derivation.
	ErrBadParam = errors.New("bad box parameters")
	// ErrNoSuchBox is returned when an operation names a box id the
	// graph does not contain.
	ErrNoSuchBox = errors.New("no such box")
	// ErrBoxConnected is returned when a structural edit (reshape,
	// delete, splice) is refused because the box's existing connections
	// are incompatible with it.
	ErrBoxConnected = errors.New("box connections forbid this edit")
	// ErrBadRegion is returned when an encapsulation region or hole
	// specification is malformed.
	ErrBadRegion = errors.New("bad encapsulation region")
	// ErrBadRegistration is returned for invalid or duplicate box-kind
	// registrations.
	ErrBadRegistration = errors.New("bad kind registration")
)

// Error is the typed evaluation error: which box failed, on which port,
// during which phase, and why. It wraps the cause, so errors.Is and
// errors.As see through it, and the evaluator returns it instead of bare
// formatted strings — callers can route on the box identity (highlight
// the failing box on the program canvas) rather than parse messages.
type Error struct {
	Box  int    // box id the failure is attributed to
	Port int    // port involved, or -1 when not port-specific
	Kind string // box kind when known, e.g. "restrict"
	Op   string // evaluation phase: "plan", "fire", "promote", "request"
	Err  error  // underlying cause
}

// Error implements the error interface.
func (e *Error) Error() string {
	kind := e.Kind
	if kind == "" {
		kind = "?"
	}
	if e.Port >= 0 {
		return fmt.Sprintf("dataflow: %s box %d (%s) port %d: %v", e.Op, e.Box, kind, e.Port, e.Err)
	}
	return fmt.Sprintf("dataflow: %s box %d (%s): %v", e.Op, e.Box, kind, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Diagnostics aggregates every problem a validation pass found, in
// deterministic (box, port) order. It implements error and multi-unwrap,
// so errors.Is sees through an aggregate to each sentinel cause at once:
// a program containing both a cycle and a dangling input satisfies
// errors.Is(err, ErrCycle) and errors.Is(err, ErrUnconnected).
type Diagnostics []*Error

// Error implements the error interface, summarizing every diagnostic.
func (d Diagnostics) Error() string {
	switch len(d) {
	case 0:
		return "dataflow: no diagnostics"
	case 1:
		return d[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dataflow: %d diagnostics:", len(d))
	for _, e := range d {
		b.WriteString("\n\t")
		b.WriteString(e.Error())
	}
	return b.String()
}

// Unwrap exposes every diagnostic to errors.Is / errors.As.
func (d Diagnostics) Unwrap() []error {
	out := make([]error, len(d))
	for i, e := range d {
		out[i] = e
	}
	return out
}

// AsError returns nil for an empty list, the sole diagnostic unchanged
// for a singleton (preserving exact box/port attribution for callers
// using errors.As), and otherwise an *Error attributed to the first
// diagnostic's box that wraps the whole list.
func (d Diagnostics) AsError() error {
	switch len(d) {
	case 0:
		return nil
	case 1:
		return d[0]
	}
	first := d[0]
	return &Error{Box: first.Box, Port: first.Port, Kind: first.Kind, Op: first.Op, Err: d}
}

// evalErr builds an *Error with no specific port.
func evalErr(op string, box int, kind string, cause error) *Error {
	return &Error{Box: box, Port: -1, Kind: kind, Op: op, Err: cause}
}

// evalPortErr builds an *Error attributed to one port.
func evalPortErr(op string, box, port int, kind string, cause error) *Error {
	return &Error{Box: box, Port: port, Kind: kind, Op: op, Err: cause}
}
