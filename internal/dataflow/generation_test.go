package dataflow

import (
	"testing"

	"repro/internal/display"
)

// TestInvalidateBumpsDisplayableGenerations: dropping a memoized
// displayable must bump its generation, so render caches keyed on the old
// stamp (internal/viewer) retire their entries even while they still hold
// the old pointer.
func TestInvalidateBumpsDisplayableGenerations(t *testing.T) {
	g, ev := newTestGraph(t)
	tb, err := g.AddBox("table", Params{"name": "Stations"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ev.Demand(tb.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, ok := v.(*display.Extended)
	if !ok {
		t.Fatalf("table output is %T, want *display.Extended", v)
	}
	before := ext.Generation()
	ev.Invalidate(tb.ID)
	if after := ext.Generation(); after.Meta == before.Meta {
		t.Fatal("Invalidate did not bump the dropped displayable's generation")
	}
}

func TestInvalidateAllBumpsDisplayableGenerations(t *testing.T) {
	g, ev := newTestGraph(t)
	tb, err := g.AddBox("table", Params{"name": "Stations"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ev.Demand(tb.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext := v.(*display.Extended)
	before := ext.Generation()
	ev.InvalidateAll()
	if after := ext.Generation(); after.Meta == before.Meta {
		t.Fatal("InvalidateAll did not bump the dropped displayable's generation")
	}
}
