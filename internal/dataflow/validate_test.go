package dataflow

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// corruptProgram is a program containing a cycle (1<->2), an unconnected
// input (join box 3, both ports), and a port-type mismatch (scalar const
// 4 feeding R input of restrict 5) — one of each plan-time failure mode.
const corruptProgram = `{
  "boxes": [
    {"id": 1, "kind": "restrict", "params": {"pred": "true"}},
    {"id": 2, "kind": "restrict", "params": {"pred": "true"}},
    {"id": 3, "kind": "join", "params": {"pred": "true"}},
    {"id": 4, "kind": "const", "params": {"type": "float", "value": "1"}},
    {"id": 5, "kind": "restrict", "params": {"pred": "true"}}
  ],
  "edges": [
    {"From": 1, "FromPort": 0, "To": 2, "ToPort": 0},
    {"From": 2, "FromPort": 0, "To": 1, "ToPort": 0},
    {"From": 4, "FromPort": 0, "To": 5, "ToPort": 0}
  ]
}`

func TestValidateGraphAggregates(t *testing.T) {
	g, loadDiags, err := UnmarshalPermissive(NewRegistry(), []byte(corruptProgram))
	if err != nil {
		t.Fatal(err)
	}
	if len(loadDiags) != 0 {
		t.Fatalf("unexpected load diagnostics: %v", loadDiags)
	}
	diags := ValidateGraph(g)
	for _, sentinel := range []error{ErrCycle, ErrUnconnected, ErrPortType} {
		found := false
		for _, d := range diags {
			if errors.Is(d, sentinel) {
				found = true
			}
		}
		if !found {
			t.Errorf("ValidateGraph missed %v; got %v", sentinel, diags)
		}
	}
	// One aggregate error answers errors.Is for every sentinel at once.
	err = diags.AsError()
	if !errors.Is(err, ErrCycle) || !errors.Is(err, ErrUnconnected) || !errors.Is(err, ErrPortType) {
		t.Errorf("aggregate error does not expose all causes: %v", err)
	}
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("aggregate %T does not unwrap to *dataflow.Error", err)
	}
}

func TestEvalPreflightAggregatesPlanDiagnostics(t *testing.T) {
	// A join whose input 0 hangs off a cycle and whose input 1 is
	// unconnected: the old planner stopped at whichever it hit first; the
	// pre-flight reports both in one *dataflow.Error.
	g := NewGraph(NewRegistry())
	a, _ := g.AddBox("restrict", Params{"pred": "true"})
	b, _ := g.AddBox("restrict", Params{"pred": "true"})
	j, _ := g.AddBox("join", Params{"pred": "true"})
	g.edges[a.ID] = map[int]Edge{0: {From: b.ID, FromPort: 0, To: a.ID, ToPort: 0}}
	g.edges[b.ID] = map[int]Edge{0: {From: a.ID, FromPort: 0, To: b.ID, ToPort: 0}}
	g.edges[j.ID] = map[int]Edge{0: {From: a.ID, FromPort: 0, To: j.ID, ToPort: 0}}

	ev := NewEvaluator(g, nil)
	_, err := ev.Eval(context.Background(), Request{Box: j.ID})
	if err == nil {
		t.Fatal("corrupt program evaluated")
	}
	if !errors.Is(err, ErrCycle) {
		t.Errorf("aggregate lacks ErrCycle: %v", err)
	}
	if !errors.Is(err, ErrUnconnected) {
		t.Errorf("aggregate lacks ErrUnconnected: %v", err)
	}
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("%T does not unwrap to *dataflow.Error", err)
	}
	if de.Op != "plan" {
		t.Errorf("aggregate op = %q, want plan", de.Op)
	}

	// Opting out restores first-error-only planning.
	_, err = ev.Eval(context.Background(), Request{Box: j.ID}, WithoutPreflight())
	if err == nil {
		t.Fatal("corrupt program evaluated without preflight")
	}
	if errors.Is(err, ErrCycle) == errors.Is(err, ErrUnconnected) {
		t.Errorf("WithoutPreflight should surface exactly one cause, got %v", err)
	}
}

func TestPreflightMemoInvalidatedByGraphEdits(t *testing.T) {
	g := NewGraph(NewRegistry())
	r, _ := g.AddBox("restrict", Params{"pred": "true"})
	ev := NewEvaluator(g, nil)
	ctx := context.Background()
	for i := 0; i < 2; i++ { // second demand answers from the verdict memo
		if _, err := ev.Eval(ctx, Request{Box: r.ID}); !errors.Is(err, ErrUnconnected) {
			t.Fatalf("demand %d: got %v, want ErrUnconnected", i, err)
		}
	}
	// Fixing the program bumps the clock; the stale verdict must not stick.
	tb, _ := g.AddBox("table", Params{"name": "cities"})
	if err := g.Connect(tb.ID, 0, r.ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(ctx, Request{Box: r.ID}); errors.Is(err, ErrUnconnected) {
		t.Fatalf("preflight verdict not invalidated after edit: %v", err)
	}
}

func TestUnmarshalRejectsCorruptProgramWithDiagnostics(t *testing.T) {
	// Round-trip the corrupt-load fixture: wire a cycle directly (as a
	// corrupt store would), marshal it, and watch the strict loader
	// reject it with aggregated diagnostics instead of deferring the
	// failure to eval.
	g := NewGraph(NewRegistry())
	a, _ := g.AddBox("restrict", Params{"pred": "true"})
	b, _ := g.AddBox("restrict", Params{"pred": "true"})
	g.edges[a.ID] = map[int]Edge{0: {From: b.ID, FromPort: 0, To: a.ID, ToPort: 0}}
	g.edges[b.ID] = map[int]Edge{0: {From: a.ID, FromPort: 0, To: b.ID, ToPort: 0}}
	data, err := Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(NewRegistry(), data); !errors.Is(err, ErrCycle) {
		t.Fatalf("strict load of cyclic program: got %v, want ErrCycle", err)
	}

	// The aggregate carries every problem, not just the first.
	if _, err := Unmarshal(NewRegistry(), []byte(corruptProgram)); err == nil {
		t.Fatal("strict load accepted corrupt program")
	} else {
		if !errors.Is(err, ErrCycle) || !errors.Is(err, ErrPortType) {
			t.Errorf("load error lacks causes: %v", err)
		}
		// Unconnected inputs alone must NOT reject (programs under
		// construction stay loadable) — so the join's dangling inputs are
		// absent from the load error.
		if errors.Is(err, ErrUnconnected) {
			t.Errorf("load rejected unconnected inputs: %v", err)
		}
	}
}

func TestUnmarshalKeepsEditablePrograms(t *testing.T) {
	// A saved program with an unconnected input loads fine.
	data := []byte(`{"boxes":[{"id":1,"kind":"restrict","params":{"pred":"true"}}]}`)
	g, err := Unmarshal(NewRegistry(), data)
	if err != nil {
		t.Fatalf("program under construction rejected: %v", err)
	}
	if len(g.Boxes()) != 1 {
		t.Fatalf("loaded %d boxes, want 1", len(g.Boxes()))
	}
}

func TestUnmarshalPermissiveReportsLoaderFindings(t *testing.T) {
	data := []byte(`{
	  "boxes": [
	    {"id": 1, "kind": "table", "params": {"name": "a"}},
	    {"id": 2, "kind": "table", "params": {"name": "b"}},
	    {"id": 2, "kind": "table", "params": {"name": "c"}},
	    {"id": 3, "kind": "viewer"}
	  ],
	  "edges": [
	    {"From": 1, "FromPort": 0, "To": 3, "ToPort": 0},
	    {"From": 2, "FromPort": 0, "To": 3, "ToPort": 0}
	  ]
	}`)
	_, diags, err := UnmarshalPermissive(NewRegistry(), data)
	if err != nil {
		t.Fatal(err)
	}
	var dupID, dupIn bool
	for _, d := range diags {
		if strings.Contains(d.Error(), "duplicate box id") {
			dupID = true
		}
		if errors.Is(d, ErrDuplicateInput) {
			dupIn = true
		}
	}
	if !dupID || !dupIn {
		t.Errorf("loader findings incomplete (dupID=%v dupIn=%v): %v", dupID, dupIn, diags)
	}
}
