package dataflow

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/display"
	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/types"
)

// registerBuiltins installs every builtin box kind: the database
// operations of Figure 3, the program-structure boxes of Figure 4.1
// (T, switch, partition), the attribute operations of Figure 5, the
// drill-down operations of Figure 6, and the group operations of
// Section 7.
func registerBuiltins(r *Registry) {
	registerDatabaseBoxes(r)
	registerAttrBoxes(r)
	registerVizBoxes(r)
	registerLiftBoxes(r)
	registerScalarBoxes(r)
	registerMoreDatabaseBoxes(r)
}

// fixedPorts returns a Ports function for kinds whose shape does not
// depend on parameters.
func fixedPorts(in, out []PortType) func(Params) ([]PortType, []PortType, error) {
	return func(Params) ([]PortType, []PortType, error) {
		return append([]PortType(nil), in...), append([]PortType(nil), out...), nil
	}
}

// asExtended asserts an R-port input value.
func asExtended(v Value) (*display.Extended, error) {
	e, ok := v.(*display.Extended)
	if !ok {
		return nil, fmt.Errorf("expected a relation input, got %T", v)
	}
	return e, nil
}

// asComposite asserts a C-port input value.
func asComposite(v Value) (*display.Composite, error) {
	c, ok := v.(*display.Composite)
	if !ok {
		return nil, fmt.Errorf("expected a composite input, got %T", v)
	}
	return c, nil
}

// rederive rebuilds extended-relation metadata over a relation produced
// by a relational operator: the default sequence layout follows the new
// relation's attributes; custom layouts survive when their location
// attributes do, and otherwise fall back to the default so the result
// always has a valid visual representation (principle 1).
func rederive(in *display.Extended, out *rel.Relation) *display.Extended {
	if in.SeqLayout {
		return display.NewDefaultExtended(in.Label, out, 80)
	}
	for _, a := range in.LocAttrs {
		if k, ok := out.AttrKind(a); !ok || !k.Numeric() {
			return display.NewDefaultExtended(in.Label, out, 80)
		}
	}
	e := in.Clone()
	e.Rel = out
	return e
}

// parsePortType inverts PortType.String for the T box's type parameter.
func parsePortType(s string) (PortType, error) {
	switch s {
	case "R":
		return RType, nil
	case "C":
		return CType, nil
	case "G":
		return GType, nil
	}
	if rest, ok := strings.CutPrefix(s, "scalar:"); ok {
		k, err := types.ParseKind(rest)
		if err != nil {
			return PortType{}, err
		}
		return ScalarType(k), nil
	}
	return PortType{}, fmt.Errorf("unknown port type %q", s)
}

func registerDatabaseBoxes(r *Registry) {
	r.MustRegister(&Kind{
		Name:          "table",
		Doc:           "Add Table: produce the tuples of a named base relation with the default display (Figure 3).",
		ExampleParams: Params{"name": "T"},
		Ports:         fixedPorts(nil, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			name, err := p.Need("name")
			if err != nil {
				return nil, err
			}
			if fc.Tables == nil {
				return nil, fmt.Errorf("no table source attached to this program")
			}
			t, err := fc.Tables.Table(name)
			if err != nil {
				return nil, err
			}
			return []Value{display.NewDefaultExtended(name, t, 80)}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "project",
		Doc:           "Project: standard database projection; 'attrs' lists the fields to keep (Figure 3).",
		ExampleParams: Params{"attrs": "a,b"},
		Ports:         fixedPorts([]PortType{RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			attrs := p.List("attrs")
			if len(attrs) == 0 {
				return nil, fmt.Errorf("project needs attrs=")
			}
			out, err := rel.Project(e.Rel, attrs)
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, out)}, nil
		},
		FireDelta: func(ctx context.Context, fc *FireContext, p Params, d *DeltaFire) ([]Value, *rel.TupleDelta, bool, error) {
			attrs := p.List("attrs")
			if len(attrs) == 0 {
				return nil, nil, false, nil
			}
			return fusedBoxDelta(ctx, d, rel.FusedOp{Project: attrs})
		},
	})

	r.MustRegister(&Kind{
		Name:          "restrict",
		Doc:           "Restrict: filter to tuples satisfying 'pred' (Figure 3).",
		ExampleParams: Params{"pred": "true"},
		Ports:         fixedPorts([]PortType{RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			src, err := p.Need("pred")
			if err != nil {
				return nil, err
			}
			pred, err := expr.Parse(src)
			if err != nil {
				return nil, err
			}
			out, err := rel.Restrict(e.Rel, pred)
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, out)}, nil
		},
		FireDelta: func(ctx context.Context, fc *FireContext, p Params, d *DeltaFire) ([]Value, *rel.TupleDelta, bool, error) {
			pred, ok := parsePredParam(p)
			if !ok {
				return nil, nil, false, nil
			}
			return fusedBoxDelta(ctx, d, rel.FusedOp{Pred: pred})
		},
	})

	r.MustRegister(&Kind{
		Name:          "sample",
		Doc:           "Sample: retain each tuple with probability 'p' (Figure 3); seeded for reproducibility.",
		ExampleParams: Params{"p": "0.1"},
		Ports:         fixedPorts([]PortType{RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			prob, err := p.Float("p", 0.1)
			if err != nil {
				return nil, err
			}
			seed, err := p.Int("seed", 1)
			if err != nil {
				return nil, err
			}
			out, err := rel.Sample(e.Rel, prob, int64(seed))
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, out)}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "join",
		Doc:           "Join: theta-join of two relations under 'pred'; 'strategy' is auto, hash, or loop (Figure 3).",
		ExampleParams: Params{"pred": "true"},
		Ports:         fixedPorts([]PortType{RType, RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			l, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			rr, err := asExtended(in[1])
			if err != nil {
				return nil, err
			}
			src, err := p.Need("pred")
			if err != nil {
				return nil, err
			}
			pred, err := expr.Parse(src)
			if err != nil {
				return nil, err
			}
			strategy := rel.JoinAuto
			switch p.Str("strategy", "auto") {
			case "auto":
			case "hash":
				strategy = rel.JoinHash
			case "loop":
				strategy = rel.JoinNestedLoop
			default:
				return nil, fmt.Errorf("unknown join strategy %q", p.Str("strategy", ""))
			}
			out, err := rel.Join(l.Rel, rr.Rel, pred, strategy)
			if err != nil {
				return nil, err
			}
			label := l.Label + "⋈" + rr.Label
			return []Value{display.NewDefaultExtended(label, out, 80)}, nil
		},
		FireDelta: func(_ context.Context, fc *FireContext, p Params, d *DeltaFire) ([]Value, *rel.TupleDelta, bool, error) {
			switch p.Str("strategy", "auto") {
			case "auto", "hash":
			default:
				return nil, nil, false, nil // nested loop is delta-opaque
			}
			pred, ok := parsePredParam(p)
			if !ok {
				return nil, nil, false, nil
			}
			l, err := asExtended(d.In[0])
			if err != nil {
				return nil, nil, false, nil
			}
			rr, err := asExtended(d.In[1])
			if err != nil {
				return nil, nil, false, nil
			}
			old, err := asExtended(d.Old[0])
			if err != nil {
				return nil, nil, false, nil
			}
			st, _ := (*d.State).(*rel.JoinState)
			if st == nil {
				oldL, err := asExtended(d.OldIn[0])
				if err != nil {
					return nil, nil, false, nil
				}
				oldR, err := asExtended(d.OldIn[1])
				if err != nil {
					return nil, nil, false, nil
				}
				var ok bool
				if st, ok = rel.BuildJoinState(oldL.Rel, oldR.Rel, old.Rel, pred); !ok {
					return nil, nil, false, nil
				}
			}
			outRel, outDelta, ok := st.Apply(l.Rel, rr.Rel, d.InDelta[0], d.InDelta[1])
			if !ok {
				*d.State = nil // poisoned; rebuild after the refire
				return nil, nil, false, nil
			}
			*d.State = st
			label := l.Label + "⋈" + rr.Label
			return []Value{display.NewDefaultExtended(label, outRel, 80)}, outDelta, true, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "sort",
		Doc:           "Sort: order tuples by 'attr'; 'desc' reverses.",
		ExampleParams: Params{"attr": "a"},
		Ports:         fixedPorts([]PortType{RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			attr, err := p.Need("attr")
			if err != nil {
				return nil, err
			}
			desc, err := p.Bool("desc", false)
			if err != nil {
				return nil, err
			}
			out, err := rel.Sort(e.Rel, attr, desc)
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, out)}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "t",
		Doc:           "T: pass the input unchanged to both outputs, so a viewer can tap any edge (Section 4.1).",
		ExampleParams: Params{"type": "R"},
		Ports: func(p Params) ([]PortType, []PortType, error) {
			pt, err := parsePortType(p.Str("type", "R"))
			if err != nil {
				return nil, nil, err
			}
			return []PortType{pt}, []PortType{pt, pt}, nil
		},
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			return []Value{in[0], in[0]}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "switch",
		Doc:           "Switch: route tuples satisfying 'pred' to output 0 and the rest to output 1 — the multi-output control flow Tioga lacked (Section 1.1 problem 3).",
		ExampleParams: Params{"pred": "true"},
		Ports:         fixedPorts([]PortType{RType}, []PortType{RType, RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			src, err := p.Need("pred")
			if err != nil {
				return nil, err
			}
			pred, err := expr.Parse(src)
			if err != nil {
				return nil, err
			}
			notPred := &expr.Unary{Op: "not", X: pred}
			parts, err := rel.Partition(e.Rel, []expr.Node{pred, notPred})
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, parts[0]), rederive(e, parts[1])}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "partition",
		Doc:           "Partition: split the input by ';'-separated predicates in 'preds', one output per predicate.",
		ExampleParams: Params{"preds": "true"},
		Ports: func(p Params) ([]PortType, []PortType, error) {
			n := len(splitPreds(p.Str("preds", "")))
			if n == 0 {
				return nil, nil, fmt.Errorf("partition needs preds=")
			}
			outs := make([]PortType, n)
			for i := range outs {
				outs[i] = RType
			}
			return []PortType{RType}, outs, nil
		},
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			srcs := splitPreds(p.Str("preds", ""))
			preds := make([]expr.Node, len(srcs))
			for i, s := range srcs {
				preds[i], err = expr.Parse(s)
				if err != nil {
					return nil, fmt.Errorf("partition predicate %d: %w", i, err)
				}
			}
			parts, err := rel.Partition(e.Rel, preds)
			if err != nil {
				return nil, err
			}
			out := make([]Value, len(parts))
			for i, part := range parts {
				pe := rederive(e, part)
				pe.Label = fmt.Sprintf("%s[%s]", e.Label, srcs[i])
				out[i] = pe
			}
			return out, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "viewer",
		Doc:           "Viewer: translate a displayable into screen output (Section 2). A sink; the canvas machinery demands its input.",
		ExampleParams: Params{},
		Ports:         fixedPorts([]PortType{GType}, nil),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			return nil, nil
		},
	})
}

// splitPreds splits a ';'-separated predicate list, trimming blanks.
func splitPreds(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ";") {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// registerMoreDatabaseBoxes installs the convenience relational boxes
// beyond Figure 3's minimum: union, distinct, and limit.
func registerMoreDatabaseBoxes(r *Registry) {
	r.MustRegister(&Kind{
		Name:          "union",
		Doc:           "Union: concatenate two relations with equal schemas.",
		ExampleParams: Params{},
		Ports:         fixedPorts([]PortType{RType, RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			a, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			b, err := asExtended(in[1])
			if err != nil {
				return nil, err
			}
			out, err := rel.Union(a.Rel, b.Rel)
			if err != nil {
				return nil, err
			}
			return []Value{rederive(a, out)}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "distinct",
		Doc:           "Distinct: drop duplicate tuples, keeping first occurrences.",
		ExampleParams: Params{},
		Ports:         fixedPorts([]PortType{RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, rel.Distinct(e.Rel))}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "limit",
		Doc:           "Limit: keep the first 'n' tuples, a quick-look alternative to Sample.",
		ExampleParams: Params{"n": "100"},
		Ports:         fixedPorts([]PortType{RType}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			n, err := p.Int("n", 100)
			if err != nil {
				return nil, err
			}
			out, err := rel.Limit(e.Rel, n)
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, out)}, nil
		},
	})
}
