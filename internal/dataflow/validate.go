package dataflow

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the structural validator beneath the static checker
// (internal/check), the strict loader (Unmarshal), and the evaluator's
// pre-flight: a compiler-style front end that walks a program without
// firing a single box and reports *every* problem at once, instead of
// the first error the lazy evaluator happens to trip over. Each problem
// is an *Error carrying box/port attribution and a sentinel cause, so
// callers route on errors.Is exactly as they do for evaluation errors.

// ValidateGraph checks the whole program: box kinds resolve, parameters
// derive ports, edges land on existing ports with compatible types, and
// the graph is acyclic. Unconnected inputs are reported too — callers
// that tolerate programs under construction (the editor keeps everything
// runnable while wiring is incomplete) filter those with
// errors.Is(d, ErrUnconnected).
func ValidateGraph(g *Graph) Diagnostics {
	v := &validator{g: g, op: "check"}
	ids := make([]int, 0, len(g.boxes))
	for id := range g.boxes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		v.checkBox(id)
	}
	for _, id := range ids {
		b, err := g.Box(id)
		if err != nil || v.badKind[id] {
			continue
		}
		for port := range b.In {
			if _, ok := g.InputEdge(id, port); !ok {
				v.report(evalPortErr(v.op, id, port, b.Kind, ErrUnconnected))
			}
		}
	}
	for _, e := range g.Edges() {
		v.checkEdge(e)
	}
	v.findCycles(ids)
	return v.finish()
}

// ValidateTarget checks only the subgraph demanded by target — the same
// region buildPlan walks — but keeps going after the first problem so a
// failing Eval can report every plan-time diagnostic in one shot.
func ValidateTarget(g *Graph, target int) Diagnostics {
	v := &validator{g: g, op: "plan"}
	v.walk(target, make(map[int]bool), make(map[int]bool))
	return v.finish()
}

// validator accumulates diagnostics over one validation pass.
type validator struct {
	g       *Graph
	op      string
	diags   Diagnostics
	badKind map[int]bool // boxes whose kind failed to resolve
}

func (v *validator) report(e *Error) { v.diags = append(v.diags, e) }

// checkBox validates one box in isolation: its kind resolves and its
// parameters derive ports.
func (v *validator) checkBox(id int) {
	b, err := v.g.Box(id)
	if err != nil {
		return
	}
	k, err := v.g.registry.Kind(b.Kind)
	if err != nil {
		v.report(evalErr(v.op, id, b.Kind, fmt.Errorf("%w %q", ErrUnknownKind, b.Kind)))
		if v.badKind == nil {
			v.badKind = make(map[int]bool)
		}
		v.badKind[id] = true
		return
	}
	if _, _, err := k.Ports(b.Params); err != nil {
		v.report(evalErr(v.op, id, b.Kind, fmt.Errorf("%w: %v", ErrBadParam, err)))
	}
}

// checkEdge validates one edge: both endpoints exist, the ports are in
// range, and the source type can flow into the destination (with R->C->G
// promotion). Edges touching a box with an unresolved kind are skipped —
// the unknown-kind diagnostic already covers them and their port shapes
// are meaningless.
func (v *validator) checkEdge(e Edge) {
	fb, ferr := v.g.Box(e.From)
	tb, terr := v.g.Box(e.To)
	if ferr != nil || terr != nil {
		kind := ""
		if tb != nil {
			kind = tb.Kind
		}
		v.report(evalPortErr(v.op, e.To, e.ToPort, kind, fmt.Errorf("%w: %s", ErrDanglingEdge, e)))
		return
	}
	if v.badKind[e.From] || v.badKind[e.To] {
		return
	}
	if e.FromPort < 0 || e.FromPort >= len(fb.Out) {
		v.report(evalPortErr(v.op, e.From, e.FromPort, fb.Kind, fmt.Errorf("%w: %s names no output of %s", ErrDanglingEdge, e, fb.Kind)))
		return
	}
	if e.ToPort < 0 || e.ToPort >= len(tb.In) {
		v.report(evalPortErr(v.op, e.To, e.ToPort, tb.Kind, fmt.Errorf("%w: %s names no input of %s", ErrDanglingEdge, e, tb.Kind)))
		return
	}
	if !Compatible(fb.Out[e.FromPort], tb.In[e.ToPort]) {
		v.report(evalPortErr(v.op, e.To, e.ToPort, tb.Kind,
			fmt.Errorf("%w: %s output of box %d (%s) cannot feed %s input", ErrPortType,
				fb.Out[e.FromPort], e.From, fb.Kind, tb.In[e.ToPort])))
	}
}

// walk is the plan-scoped traversal: box checks, input connectivity,
// edge checks, and on-path cycle detection, continuing past errors.
func (v *validator) walk(id int, done, active map[int]bool) {
	if done[id] {
		return
	}
	if active[id] {
		v.report(evalErr(v.op, id, v.kindOf(id), fmt.Errorf("%w: box %d is on its own input path", ErrCycle, id)))
		return
	}
	active[id] = true
	defer delete(active, id)

	b, err := v.g.Box(id)
	if err != nil {
		v.report(evalErr(v.op, id, "", fmt.Errorf("%w: no box %d", ErrDanglingEdge, id)))
		done[id] = true
		return
	}
	v.checkBox(id)
	for port := range b.In {
		e, ok := v.g.InputEdge(id, port)
		if !ok {
			v.report(evalPortErr(v.op, id, port, b.Kind, ErrUnconnected))
			continue
		}
		// Visit the producer first so an unresolved upstream kind is known
		// before the edge's port shapes are judged.
		v.walk(e.From, done, active)
		v.checkEdge(e)
	}
	done[id] = true
}

func (v *validator) kindOf(id int) string {
	if b, err := v.g.Box(id); err == nil {
		return b.Kind
	}
	return ""
}

// findCycles reports each strongly connected cycle once, attributed to
// its smallest box id, with the cycle's path in the message. Connect
// refuses cycles, so any finding here means corrupt serialized data.
func (v *validator) findCycles(ids []int) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(ids))
	var stack []int
	var visit func(id int)
	visit = func(id int) {
		color[id] = gray
		stack = append(stack, id)
		for _, e := range v.g.OutputEdges(id) {
			if _, err := v.g.Box(e.To); err != nil {
				continue // dangling edges are reported separately
			}
			switch color[e.To] {
			case white:
				visit(e.To)
			case gray:
				v.reportCycle(stack, e.To)
			}
		}
		stack = stack[:len(stack)-1]
		color[id] = black
	}
	for _, id := range ids {
		if color[id] == white {
			visit(id)
		}
	}
}

// reportCycle extracts the cycle closed by a back edge to head from the
// gray stack and reports it once, anchored at its smallest box id.
func (v *validator) reportCycle(stack []int, head int) {
	start := 0
	for i, id := range stack {
		if id == head {
			start = i
			break
		}
	}
	cycle := append([]int(nil), stack[start:]...)
	anchor, at := cycle[0], 0
	for i, id := range cycle {
		if id < anchor {
			anchor, at = id, i
		}
	}
	// Rotate so the path starts at the anchor, keeping edge order.
	cycle = append(cycle[at:], cycle[:at]...)
	var path strings.Builder
	for _, id := range cycle {
		fmt.Fprintf(&path, "%d -> ", id)
	}
	fmt.Fprintf(&path, "%d", cycle[0])
	v.report(evalErr(v.op, anchor, v.kindOf(anchor), fmt.Errorf("%w: %s", ErrCycle, path.String())))
}

// finish orders the diagnostics deterministically: by box, then port,
// then message.
func (v *validator) finish() Diagnostics {
	sort.SliceStable(v.diags, func(i, j int) bool {
		a, b := v.diags[i], v.diags[j]
		if a.Box != b.Box {
			return a.Box < b.Box
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Err.Error() < b.Err.Error()
	})
	return v.diags
}
