package dataflow

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestEvalStatsMirrorObsCounters checks that the per-evaluator EvalStats
// struct and the process-wide obs counters tell the same story: fires,
// cache hits, and cache misses advance in lockstep.
func TestEvalStatsMirrorObsCounters(t *testing.T) {
	obs.Reset()
	obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(false)
		obs.Reset()
	}()

	ev, ids := chainGraph(t, 4)
	before := obs.TakeSnapshot()

	sink := ids[len(ids)-1]
	if _, err := ev.Demand(sink, 0); err != nil {
		t.Fatal(err)
	}
	// A clean re-demand is answered from the memo table.
	if _, err := ev.Demand(sink, 0); err != nil {
		t.Fatal(err)
	}
	delta := obs.CounterDelta(before, obs.TakeSnapshot())

	if delta[obs.EvalFires] != int64(ev.Stats.Fires) {
		t.Fatalf("obs fires %d != EvalStats.Fires %d", delta[obs.EvalFires], ev.Stats.Fires)
	}
	if delta[obs.EvalCacheHits] != int64(ev.Stats.CacheHits) {
		t.Fatalf("obs cache hits %d != EvalStats.CacheHits %d", delta[obs.EvalCacheHits], ev.Stats.CacheHits)
	}
	if delta[obs.EvalCacheMiss] != int64(ev.Stats.CacheMiss) {
		t.Fatalf("obs cache miss %d != EvalStats.CacheMiss %d", delta[obs.EvalCacheMiss], ev.Stats.CacheMiss)
	}
	if delta[obs.EvalDemands] != 2 {
		t.Fatalf("eval.demands = %d, want 2", delta[obs.EvalDemands])
	}
	if ev.Stats.CacheHits == 0 {
		t.Fatal("re-demand did not hit the memo table")
	}
	snap := obs.TakeSnapshot()
	if h := snap.Histograms[obs.EvalDemandNS]; h.Count != 2 {
		t.Fatalf("demand latency histogram count = %d, want 2", h.Count)
	}
	if h := snap.Histograms[obs.EvalFireNS]; h.Count != int64(ev.Stats.Fires) {
		t.Fatalf("fire latency histogram count = %d, want %d", h.Count, ev.Stats.Fires)
	}
}

// TestEvalTracingEmitsFireSpans demands a chain under an active trace
// and checks per-box firing spans carry box ids and kinds.
func TestEvalTracingEmitsFireSpans(t *testing.T) {
	obs.Reset()
	obs.SetEnabled(true)
	obs.StartTracing()
	defer func() {
		obs.StopTracing()
		obs.SetEnabled(false)
		obs.Reset()
	}()

	ev, ids := chainGraph(t, 3)
	if _, err := ev.Demand(ids[len(ids)-1], 0); err != nil {
		t.Fatal(err)
	}
	obs.StopTracing()
	var sb strings.Builder
	if err := obs.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "eval.demand") {
		t.Fatalf("trace missing eval.demand span:\n%s", out)
	}
	if !strings.Contains(out, "eval.fire") || !strings.Contains(out, `"kind"`) {
		t.Fatalf("trace missing annotated eval.fire spans:\n%s", out)
	}
}

// chainGraph builds table -> n restrict boxes so demanding the sink
// fires a known chain of n+1 boxes with deterministic counts.
func chainGraph(t *testing.T, n int) (*Evaluator, []int) {
	t.Helper()
	g, ev := newTestGraph(t)
	tb, err := g.AddBox("table", Params{"name": "Stations"})
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{tb.ID}
	prev := tb.ID
	for i := 0; i < n; i++ {
		b, err := g.AddBox("restrict", Params{"pred": "true"})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Connect(prev, 0, b.ID, 0); err != nil {
			t.Fatal(err)
		}
		prev = b.ID
		ids = append(ids, b.ID)
	}
	return ev, ids
}
