package dataflow

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Params is a box's serializable configuration: string keys and values.
// Everything a box needs beyond its inputs — predicates, probabilities,
// attribute lists, display specifications — lives here so Save Program
// can store programs in the database and reload them byte-for-byte.
type Params map[string]string

// Clone copies the parameter map.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Str returns the named parameter, or def if absent.
func (p Params) Str(key, def string) string {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Need returns the named parameter or an error if absent or empty.
func (p Params) Need(key string) (string, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return "", fmt.Errorf("%w: missing required parameter %q", ErrBadParam, key)
	}
	return v, nil
}

// Float returns the named parameter parsed as float64, or def if absent.
func (p Params) Float(key string, def float64) (float64, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: parameter %q = %q is not a number", ErrBadParam, key, v)
	}
	return f, nil
}

// Int returns the named parameter parsed as int, or def if absent.
func (p Params) Int(key string, def int) (int, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%w: parameter %q = %q is not an integer", ErrBadParam, key, v)
	}
	return i, nil
}

// Bool returns the named parameter parsed as bool, or def if absent.
func (p Params) Bool(key string, def bool) (bool, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("%w: parameter %q = %q is not a bool", ErrBadParam, key, v)
	}
	return b, nil
}

// List returns the named parameter split on commas with whitespace
// trimmed; absent or empty yields nil.
func (p Params) List(key string) []string {
	v, ok := p[key]
	if !ok || v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, s := range parts {
		if t := strings.TrimSpace(s); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Floats returns the named parameter as a comma-separated float list.
func (p Params) Floats(key string) ([]float64, error) {
	var out []float64
	for _, s := range p.List(key) {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: parameter %q: %q is not a number", ErrBadParam, key, s)
		}
		out = append(out, f)
	}
	return out, nil
}

// String renders parameters deterministically for labels and diffs.
func (p Params) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + p[k]
	}
	return strings.Join(parts, " ")
}
