package dataflow

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Programs, like everything in Tioga-2, live in the database (Save
// Program, Section 4.1). This file defines the wire format: box kinds,
// labels, parameters, and edges; port shapes are re-derived from the
// registry on load so a program saved under one registry loads under any
// registry providing the same kinds.

type boxJSON struct {
	ID     int    `json:"id"`
	Kind   string `json:"kind"`
	Label  string `json:"label,omitempty"`
	Params Params `json:"params,omitempty"`
}

type programJSON struct {
	Boxes []boxJSON `json:"boxes"`
	Edges []Edge    `json:"edges"`
}

// Marshal serializes a program.
func Marshal(g *Graph) ([]byte, error) {
	var pj programJSON
	for _, b := range g.Boxes() {
		pj.Boxes = append(pj.Boxes, boxJSON{ID: b.ID, Kind: b.Kind, Label: b.Label, Params: b.Params})
	}
	pj.Edges = g.Edges()
	return json.MarshalIndent(pj, "", "  ")
}

// Unmarshal rebuilds a program against a registry. Box IDs are preserved
// so saved references (for example a viewer attached to box 7) remain
// valid.
//
// The load is validating: structural corruption — cycles, dangling or
// duplicate edges, port type mismatches, unknown kinds, bad parameters —
// is rejected here with every diagnostic aggregated into one error
// (test with errors.Is against the sentinels), instead of deferring the
// failure to the first Eval that happens to demand the corrupt region.
// Unconnected inputs are tolerated: a saved program under construction
// stays loadable and editable.
func Unmarshal(reg *Registry, data []byte) (*Graph, error) {
	g, diags, err := UnmarshalPermissive(reg, data)
	if err != nil {
		return nil, err
	}
	for _, d := range ValidateGraph(g) {
		if errors.Is(d, ErrUnconnected) {
			continue
		}
		diags = append(diags, d)
	}
	if err := diags.AsError(); err != nil {
		return nil, fmt.Errorf("dataflow: corrupt program: %w", err)
	}
	return g, nil
}

// UnmarshalPermissive rebuilds a program without rejecting structural
// corruption: boxes with unknown kinds keep empty port shapes, and edges
// are wired exactly as stored, bypassing Connect's type, cycle, and
// single-edge rules. The returned Diagnostics report problems only the
// loader can see (duplicate box ids, duplicate input edges); everything
// else is left for ValidateGraph / internal/check, which is the point:
// tioga-vet must be able to load a corrupt program in order to diagnose
// it. The error is non-nil only for undecodable JSON.
func UnmarshalPermissive(reg *Registry, data []byte) (*Graph, Diagnostics, error) {
	var pj programJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, nil, fmt.Errorf("dataflow: bad program data: %w", err)
	}
	g := NewGraph(reg)
	var diags Diagnostics
	for _, bj := range pj.Boxes {
		if _, dup := g.boxes[bj.ID]; dup {
			diags = append(diags, evalErr("load", bj.ID, bj.Kind,
				fmt.Errorf("duplicate box id %d in program", bj.ID)))
			continue
		}
		params := bj.Params
		if params == nil {
			params = Params{}
		}
		var in, out []PortType
		if k, err := reg.Kind(bj.Kind); err == nil {
			// Port derivation errors surface as ErrBadParam in validation;
			// the box is kept with empty shapes so the rest of the program
			// still loads and gets checked.
			in, out, _ = k.Ports(params)
		}
		label := bj.Label
		if label == "" {
			label = bj.Kind
		}
		g.boxes[bj.ID] = &Box{ID: bj.ID, Kind: bj.Kind, Label: label, Params: params.Clone(), In: in, Out: out}
		g.bump(bj.ID)
		if bj.ID >= g.nextID {
			g.nextID = bj.ID + 1
		}
	}
	for _, e := range pj.Edges {
		if _, taken := g.edges[e.To][e.ToPort]; taken {
			diags = append(diags, evalPortErr("load", e.To, e.ToPort, "",
				fmt.Errorf("%w: %s", ErrDuplicateInput, e)))
			continue
		}
		if g.edges[e.To] == nil {
			g.edges[e.To] = make(map[int]Edge)
		}
		g.edges[e.To][e.ToPort] = e
		if _, ok := g.boxes[e.To]; ok {
			g.bump(e.To)
		}
	}
	return g, diags, nil
}

// Restore replaces g's contents in place from serialized data, keeping
// the Graph object (and thus any viewers holding references to it) alive.
// Box IDs are preserved; versions are bumped so evaluators recompute.
// This is the engine of the environment's undo button: snapshot before a
// mutating operation, Restore to undo.
func Restore(g *Graph, data []byte) error {
	loaded, err := Unmarshal(g.registry, data)
	if err != nil {
		return err
	}
	// Preserve monotone versions across the restore so memo entries from
	// the pre-undo world can never be mistaken for fresh.
	versions := g.version
	g.boxes = loaded.boxes
	g.edges = loaded.edges
	g.nextID = loaded.nextID
	g.version = versions
	for id := range g.boxes {
		g.bump(id)
	}
	return nil
}

// Touch bumps a box's version, forcing re-evaluation on next demand. The
// environment calls it when an external dependency changes (for example a
// base-table update behind a table box).
func (g *Graph) Touch(id int) {
	if _, ok := g.boxes[id]; ok {
		g.bump(id)
	}
}

// Merge adds a saved program's boxes and edges into an existing graph
// with fresh IDs (Add Program, Section 4.1). It returns the mapping from
// the saved program's IDs to the new ones.
func Merge(g *Graph, data []byte) (map[int]int, error) {
	var pj programJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("dataflow: bad program data: %w", err)
	}
	mapping := make(map[int]int, len(pj.Boxes))
	var added []int
	rollback := func() {
		for i := len(added) - 1; i >= 0; i-- {
			for _, e := range g.OutputEdges(added[i]) {
				_ = g.Disconnect(e.To, e.ToPort)
			}
			_ = g.DeleteBox(added[i])
		}
	}
	for _, bj := range pj.Boxes {
		b, err := g.AddBox(bj.Kind, bj.Params)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("dataflow: add program: %w", err)
		}
		if bj.Label != "" {
			b.Label = bj.Label
		}
		mapping[bj.ID] = b.ID
		added = append(added, b.ID)
	}
	for _, e := range pj.Edges {
		if err := g.Connect(mapping[e.From], e.FromPort, mapping[e.To], e.ToPort); err != nil {
			rollback()
			return nil, fmt.Errorf("dataflow: add program: %w", err)
		}
	}
	return mapping, nil
}

// MarshalDef serializes an encapsulated box definition.
func MarshalDef(def *EncapDef) ([]byte, error) {
	return json.MarshalIndent(defToJSON(def), "", "  ")
}

// UnmarshalDef rebuilds an encapsulated box definition.
func UnmarshalDef(data []byte) (*EncapDef, error) {
	var dj defJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return nil, fmt.Errorf("dataflow: bad encapsulation data: %w", err)
	}
	return defFromJSON(&dj)
}

type holeJSON struct {
	In  []string `json:"in,omitempty"`
	Out []string `json:"out,omitempty"`
}

type defJSON struct {
	Name    string        `json:"name"`
	Boxes   []boxSpecJSON `json:"boxes"`
	Edges   []Edge        `json:"edges,omitempty"`
	Inputs  []PortRef     `json:"inputs,omitempty"`
	Outputs []PortRef     `json:"outputs,omitempty"`
	Holes   []holeJSON    `json:"holes,omitempty"`
}

type boxSpecJSON struct {
	Kind   string `json:"kind,omitempty"`
	Label  string `json:"label,omitempty"`
	Params Params `json:"params,omitempty"`
	Hole   int    `json:"hole"`
}

func defToJSON(def *EncapDef) *defJSON {
	dj := &defJSON{Name: def.Name, Edges: def.Edges, Inputs: def.Inputs, Outputs: def.Outputs}
	for _, b := range def.Boxes {
		dj.Boxes = append(dj.Boxes, boxSpecJSON{Kind: b.Kind, Label: b.Label, Params: b.Params, Hole: b.Hole})
	}
	for _, h := range def.Holes {
		var hj holeJSON
		for _, t := range h.In {
			hj.In = append(hj.In, t.String())
		}
		for _, t := range h.Out {
			hj.Out = append(hj.Out, t.String())
		}
		dj.Holes = append(dj.Holes, hj)
	}
	return dj
}

func defFromJSON(dj *defJSON) (*EncapDef, error) {
	def := &EncapDef{Name: dj.Name, Edges: dj.Edges, Inputs: dj.Inputs, Outputs: dj.Outputs}
	for _, b := range dj.Boxes {
		def.Boxes = append(def.Boxes, BoxSpec{Kind: b.Kind, Label: b.Label, Params: b.Params, Hole: b.Hole})
	}
	for _, hj := range dj.Holes {
		var h HoleSpec
		for _, s := range hj.In {
			t, err := parsePortType(s)
			if err != nil {
				return nil, err
			}
			h.In = append(h.In, t)
		}
		for _, s := range hj.Out {
			t, err := parsePortType(s)
			if err != nil {
				return nil, err
			}
			h.Out = append(h.Out, t)
		}
		def.Holes = append(def.Holes, h)
	}
	return def, nil
}
