package dataflow

import (
	"fmt"
	"sort"
)

// PortRef addresses one port of one box.
type PortRef struct {
	Box  int
	Port int
}

// BoxSpec is the template for one box inside an encapsulated definition.
// A spec with Hole >= 0 is a placeholder to be plugged at instantiation.
type BoxSpec struct {
	Kind   string
	Label  string
	Params Params
	Hole   int // -1 for ordinary boxes
}

// HoleSpec records the port signature a filler box must satisfy: the
// types of the edges cut by the hole's boundary.
type HoleSpec struct {
	In  []PortType // edges flowing from the retained region into the hole
	Out []PortType // edges flowing from the hole back into the region
}

// EncapDef is an encapsulated box definition (Section 4.1's Encapsulate):
// a reusable sub-program whose boundary-cut edges became inputs and
// outputs. Definitions with holes are parameterized — "something akin to
// a macro or (more accurately) a higher-order function". Instantiation is
// macro expansion: the definition's boxes are copied into the host
// program and the boundary ports are exposed for wiring.
type EncapDef struct {
	Name    string
	Boxes   []BoxSpec // local box indices 0..n-1
	Edges   []Edge    // From/To are local box indices
	Inputs  []PortRef // exposed inputs, in cut-edge order
	Outputs []PortRef // exposed outputs, in cut-edge order
	Holes   []HoleSpec
}

// Encapsulate builds a definition from a region of an existing program.
// region lists the box IDs inside the user's closed curve; holes lists,
// for each hole, the box IDs inside that inner closed area (hole boxes
// must be inside the region). Edges cut by the outer curve become the
// definition's inputs and outputs; edges cut by a hole boundary become
// the hole's port signature; edges wholly inside a hole are discarded.
func Encapsulate(g *Graph, name string, region []int, holes [][]int) (*EncapDef, error) {
	if name == "" {
		return nil, fmt.Errorf("dataflow: encapsulate: empty name: %w", ErrBadRegion)
	}
	inRegion := make(map[int]bool)
	for _, id := range region {
		if _, err := g.Box(id); err != nil {
			return nil, err
		}
		inRegion[id] = true
	}
	if len(inRegion) == 0 {
		return nil, fmt.Errorf("dataflow: encapsulate: empty region: %w", ErrBadRegion)
	}
	holeOf := make(map[int]int) // boxID -> hole index
	for hi, hboxes := range holes {
		if len(hboxes) == 0 {
			return nil, fmt.Errorf("dataflow: encapsulate: hole %d is empty: %w", hi, ErrBadRegion)
		}
		for _, id := range hboxes {
			if !inRegion[id] {
				return nil, fmt.Errorf("dataflow: encapsulate: hole box %d is outside the region: %w", id, ErrBadRegion)
			}
			if prev, dup := holeOf[id]; dup {
				return nil, fmt.Errorf("dataflow: encapsulate: box %d is in holes %d and %d: %w", id, prev, hi, ErrBadRegion)
			}
			holeOf[id] = hi
		}
	}

	def := &EncapDef{Name: name, Holes: make([]HoleSpec, len(holes))}

	// Retained boxes get local indices in ID order; each hole gets one
	// placeholder box after them.
	var retained []int
	for id := range inRegion {
		if _, isHole := holeOf[id]; !isHole {
			retained = append(retained, id)
		}
	}
	sort.Ints(retained)
	local := make(map[int]int)
	for i, id := range retained {
		b, _ := g.Box(id)
		local[id] = i
		def.Boxes = append(def.Boxes, BoxSpec{Kind: b.Kind, Label: b.Label, Params: b.Params.Clone(), Hole: -1})
	}
	holeLocal := make([]int, len(holes))
	for hi := range holes {
		holeLocal[hi] = len(def.Boxes)
		def.Boxes = append(def.Boxes, BoxSpec{Kind: "", Label: fmt.Sprintf("hole%d", hi), Hole: hi})
	}
	// Hole placeholders accumulate ports as cut edges are discovered; the
	// local port index is the running count.
	holeIn := make([]int, len(holes))
	holeOut := make([]int, len(holes))

	edges := g.Edges() // deterministic order
	for _, e := range edges {
		fromIn, toIn := inRegion[e.From], inRegion[e.To]
		fromHole, fromIsHole := holeOf[e.From]
		toHole, toIsHole := holeOf[e.To]
		fb, _ := g.Box(e.From)
		tb, _ := g.Box(e.To)

		switch {
		case !fromIn && !toIn:
			// Entirely outside; irrelevant.

		case fromIn && toIn && !fromIsHole && !toIsHole:
			// Internal edge of the definition.
			def.Edges = append(def.Edges, Edge{
				From: local[e.From], FromPort: e.FromPort,
				To: local[e.To], ToPort: e.ToPort,
			})

		case fromIn && toIn && fromIsHole && toIsHole:
			if fromHole == toHole {
				// Wholly inside one hole: discarded with the hole's
				// contents.
				continue
			}
			// Hole-to-hole edge: output port of one placeholder feeding
			// an input port of another.
			def.Holes[fromHole].Out = append(def.Holes[fromHole].Out, tb.In[e.ToPort])
			def.Holes[toHole].In = append(def.Holes[toHole].In, tb.In[e.ToPort])
			def.Edges = append(def.Edges, Edge{
				From: holeLocal[fromHole], FromPort: holeOut[fromHole],
				To: holeLocal[toHole], ToPort: holeIn[toHole],
			})
			holeOut[fromHole]++
			holeIn[toHole]++

		case fromIn && toIn && toIsHole:
			// Region box feeding a hole: the hole gains an input typed by
			// the source output.
			def.Holes[toHole].In = append(def.Holes[toHole].In, fb.Out[e.FromPort])
			def.Edges = append(def.Edges, Edge{
				From: local[e.From], FromPort: e.FromPort,
				To: holeLocal[toHole], ToPort: holeIn[toHole],
			})
			holeIn[toHole]++

		case fromIn && toIn && fromIsHole:
			// Hole feeding a region box: the hole gains an output typed
			// by the destination input.
			def.Holes[fromHole].Out = append(def.Holes[fromHole].Out, tb.In[e.ToPort])
			def.Edges = append(def.Edges, Edge{
				From: holeLocal[fromHole], FromPort: holeOut[fromHole],
				To: local[e.To], ToPort: e.ToPort,
			})
			holeOut[fromHole]++

		case !fromIn && toIn:
			// Cut by the outer curve inbound: an input of the new box.
			if toIsHole {
				def.Holes[toHole].In = append(def.Holes[toHole].In, fb.Out[e.FromPort])
				def.Inputs = append(def.Inputs, PortRef{Box: holeLocal[toHole], Port: holeIn[toHole]})
				holeIn[toHole]++
			} else {
				def.Inputs = append(def.Inputs, PortRef{Box: local[e.To], Port: e.ToPort})
			}

		case fromIn && !toIn:
			// Cut outbound: an output of the new box.
			if fromIsHole {
				def.Holes[fromHole].Out = append(def.Holes[fromHole].Out, tb.In[e.ToPort])
				def.Outputs = append(def.Outputs, PortRef{Box: holeLocal[fromHole], Port: holeOut[fromHole]})
				holeOut[fromHole]++
			} else {
				def.Outputs = append(def.Outputs, PortRef{Box: local[e.From], Port: e.FromPort})
			}
		}
	}
	return def, nil
}

// Filler plugs one hole at instantiation: a box kind with parameters
// whose ports must be compatible with the hole's signature.
type Filler struct {
	Kind   string
	Params Params
}

// Instance maps an expanded definition back to host-graph box IDs so the
// caller can wire the exposed boundary ports.
type Instance struct {
	BoxIDs  []int     // local index -> host box ID
	Inputs  []PortRef // host box IDs with input port indices, in def order
	Outputs []PortRef // host box IDs with output port indices
}

// Instantiate expands a definition into g, plugging each hole with the
// corresponding filler. Filler port types must satisfy the hole signature
// (inputs must accept what the region feeds; outputs must be acceptable
// where the region expects them).
func Instantiate(g *Graph, def *EncapDef, fillers []Filler) (*Instance, error) {
	if got, want := len(fillers), len(def.Holes); got != want {
		return nil, fmt.Errorf("dataflow: %s has %d hole(s), got %d filler(s): %w", def.Name, want, got, ErrBadRegion)
	}

	inst := &Instance{BoxIDs: make([]int, len(def.Boxes))}
	var added []int
	rollback := func() {
		// Remove in reverse ID order; freshly added boxes may have edges
		// among themselves, so strip edges first.
		for _, id := range added {
			for _, e := range g.OutputEdges(id) {
				_ = g.Disconnect(e.To, e.ToPort)
			}
			for port := range g.edges[id] {
				_ = g.Disconnect(id, port)
			}
		}
		for i := len(added) - 1; i >= 0; i-- {
			_ = g.DeleteBox(added[i])
		}
	}

	for i, spec := range def.Boxes {
		var kind string
		var params Params
		if spec.Hole >= 0 {
			f := fillers[spec.Hole]
			kind, params = f.Kind, f.Params
		} else {
			kind, params = spec.Kind, spec.Params
		}
		b, err := g.AddBox(kind, params)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("dataflow: instantiate %s: box %d: %w", def.Name, i, err)
		}
		added = append(added, b.ID)
		if spec.Hole >= 0 {
			// Validate the filler's shape against the hole signature.
			h := def.Holes[spec.Hole]
			if len(b.In) < len(h.In) || len(b.Out) < len(h.Out) {
				rollback()
				return nil, fmt.Errorf("dataflow: filler %q for hole %d of %s has %d/%d ports, need at least %d/%d: %w",
					kind, spec.Hole, def.Name, len(b.In), len(b.Out), len(h.In), len(h.Out), ErrPortType)
			}
			for pi, want := range h.In {
				if !Compatible(want, b.In[pi]) {
					rollback()
					return nil, fmt.Errorf("dataflow: filler %q input %d cannot accept %s: %w", kind, pi, want, ErrPortType)
				}
			}
			for pi, want := range h.Out {
				if !Compatible(b.Out[pi], want) {
					rollback()
					return nil, fmt.Errorf("dataflow: filler %q output %d (%s) incompatible with hole expectation %s: %w",
						kind, pi, b.Out[pi], want, ErrPortType)
				}
			}
			b.Label = spec.Label + ":" + kind
		} else if spec.Label != "" {
			b.Label = spec.Label
		}
		inst.BoxIDs[i] = b.ID
	}

	for _, e := range def.Edges {
		if err := g.Connect(inst.BoxIDs[e.From], e.FromPort, inst.BoxIDs[e.To], e.ToPort); err != nil {
			rollback()
			return nil, fmt.Errorf("dataflow: instantiate %s: %w", def.Name, err)
		}
	}

	for _, p := range def.Inputs {
		inst.Inputs = append(inst.Inputs, PortRef{Box: inst.BoxIDs[p.Box], Port: p.Port})
	}
	for _, p := range def.Outputs {
		inst.Outputs = append(inst.Outputs, PortRef{Box: inst.BoxIDs[p.Box], Port: p.Port})
	}
	return inst, nil
}
