package dataflow

import (
	"testing"
)

// buildEncapSource builds table -> restrict -> project -> sort and
// returns the graph plus boxes by name.
func buildEncapSource(t testing.TB) (*Graph, *Evaluator, map[string]*Box) {
	t.Helper()
	g, ev := newTestGraph(t)
	boxes := map[string]*Box{}
	add := func(name, kind string, p Params) {
		b, err := g.AddBox(kind, p)
		if err != nil {
			t.Fatal(err)
		}
		boxes[name] = b
	}
	add("table", "table", Params{"name": "Stations"})
	add("restrict", "restrict", Params{"pred": "state = 'LA'"})
	add("project", "project", Params{"attrs": "id,name,state,altitude"})
	add("sort", "sort", Params{"attr": "altitude"})
	for _, pair := range [][2]string{{"table", "restrict"}, {"restrict", "project"}, {"project", "sort"}} {
		if err := g.Connect(boxes[pair[0]].ID, 0, boxes[pair[1]].ID, 0); err != nil {
			t.Fatal(err)
		}
	}
	return g, ev, boxes
}

func TestEncapsulateNoHoles(t *testing.T) {
	g, _, boxes := buildEncapSource(t)
	// Encapsulate restrict+project: the cut edges are table->restrict
	// (input) and project->sort (output).
	def, err := Encapsulate(g, "laFields", []int{boxes["restrict"].ID, boxes["project"].ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Boxes) != 2 || len(def.Inputs) != 1 || len(def.Outputs) != 1 {
		t.Fatalf("def shape: %d boxes, %d in, %d out", len(def.Boxes), len(def.Inputs), len(def.Outputs))
	}
	if len(def.Edges) != 1 {
		t.Fatalf("def has %d internal edges", len(def.Edges))
	}

	// Instantiate into a fresh program and evaluate.
	g2, ev2 := newTestGraph(t)
	tb, _ := g2.AddBox("table", Params{"name": "Stations"})
	inst, err := Instantiate(g2, def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Connect(tb.ID, 0, inst.Inputs[0].Box, inst.Inputs[0].Port); err != nil {
		t.Fatal(err)
	}
	e := demandR(t, ev2, inst.Outputs[0].Box)
	if e.Rel.Schema().Len() != 4 {
		t.Errorf("instantiated output schema %s", e.Rel.Schema())
	}
	for i := 0; i < e.Rel.Len(); i++ {
		if e.Rel.Row(i).Attr("state").Text() != "LA" {
			t.Fatal("encapsulated restrict not applied")
		}
	}
}

func TestEncapsulateWithHole(t *testing.T) {
	g, _, boxes := buildEncapSource(t)
	// Encapsulate restrict+project with project as a hole: the new box is
	// "filter then <something>", its output the cut project->sort edge,
	// which emerges from the hole.
	def, err := Encapsulate(g, "filtered",
		[]int{boxes["restrict"].ID, boxes["project"].ID},
		[][]int{{boxes["project"].ID}})
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Holes) != 1 {
		t.Fatalf("%d holes", len(def.Holes))
	}
	if len(def.Holes[0].In) != 1 || len(def.Holes[0].Out) != 1 {
		t.Fatalf("hole signature %d/%d", len(def.Holes[0].In), len(def.Holes[0].Out))
	}

	// Plug the hole with a sample box instead of the project.
	g2, ev2 := newTestGraph(t)
	tb, _ := g2.AddBox("table", Params{"name": "Stations"})
	inst, err := Instantiate(g2, def, []Filler{{Kind: "sample", Params: Params{"p": "1", "seed": "3"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Connect(tb.ID, 0, inst.Inputs[0].Box, inst.Inputs[0].Port); err != nil {
		t.Fatal(err)
	}
	e := demandR(t, ev2, inst.Outputs[0].Box)
	// Sample with p=1 keeps all LA stations; schema unprojected.
	if !e.Rel.Schema().Has("longitude") {
		t.Error("hole filler did not replace project")
	}

	// Wrong filler count.
	if _, err := Instantiate(g2, def, nil); err == nil {
		t.Error("missing filler accepted")
	}
	// Incompatible filler (join has 2 inputs but output R is fine; its
	// input signature cannot accept the hole's single feed — it can,
	// since hole only requires input 0 compatible; use a truly bad one).
	if _, err := Instantiate(g2, def, []Filler{{Kind: "stitch", Params: Params{"n": "1"}}}); err == nil {
		t.Error("type-incompatible filler accepted")
	}
}

func TestEncapsulateValidation(t *testing.T) {
	g, _, boxes := buildEncapSource(t)
	if _, err := Encapsulate(g, "", []int{boxes["restrict"].ID}, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Encapsulate(g, "x", nil, nil); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := Encapsulate(g, "x", []int{999}, nil); err == nil {
		t.Error("missing box accepted")
	}
	// Hole outside region.
	if _, err := Encapsulate(g, "x", []int{boxes["restrict"].ID}, [][]int{{boxes["sort"].ID}}); err == nil {
		t.Error("hole outside region accepted")
	}
	// Box in two holes.
	if _, err := Encapsulate(g, "x",
		[]int{boxes["restrict"].ID, boxes["project"].ID},
		[][]int{{boxes["project"].ID}, {boxes["project"].ID}}); err == nil {
		t.Error("box in two holes accepted")
	}
	// Empty hole.
	if _, err := Encapsulate(g, "x", []int{boxes["restrict"].ID}, [][]int{{}}); err == nil {
		t.Error("empty hole accepted")
	}
}

func TestEncapDefSerialization(t *testing.T) {
	g, _, boxes := buildEncapSource(t)
	def, err := Encapsulate(g, "laFields",
		[]int{boxes["restrict"].ID, boxes["project"].ID, boxes["sort"].ID},
		[][]int{{boxes["project"].ID}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalDef(def)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDef(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != def.Name || len(back.Boxes) != len(def.Boxes) ||
		len(back.Holes) != len(def.Holes) || len(back.Edges) != len(def.Edges) {
		t.Fatal("definition round trip changed shape")
	}
	for i := range def.Holes {
		if len(back.Holes[i].In) != len(def.Holes[i].In) {
			t.Fatal("hole signature lost")
		}
		for j := range def.Holes[i].In {
			if !back.Holes[i].In[j].Equal(def.Holes[i].In[j]) {
				t.Fatal("hole port type changed")
			}
		}
	}

	// A loaded definition instantiates identically.
	g2, ev2 := newTestGraph(t)
	tb, _ := g2.AddBox("table", Params{"name": "Stations"})
	inst, err := Instantiate(g2, back, []Filler{{Kind: "project", Params: Params{"attrs": "id,altitude"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Connect(tb.ID, 0, inst.Inputs[0].Box, inst.Inputs[0].Port); err != nil {
		t.Fatal(err)
	}
	// The region's terminal sort box has no cut output edge, so the
	// definition has no outputs; demand the instantiated sort directly
	// (retained boxes are ordered by original ID: restrict, sort, hole).
	e := demandR(t, ev2, inst.BoxIDs[1])
	if e.Rel.Schema().Len() != 2 {
		t.Errorf("schema %s", e.Rel.Schema())
	}
	if _, err := UnmarshalDef([]byte("not json")); err == nil {
		t.Error("bad data accepted")
	}
}

func TestInstantiateRollbackOnFailure(t *testing.T) {
	g, _, boxes := buildEncapSource(t)
	def, err := Encapsulate(g, "f",
		[]int{boxes["restrict"].ID, boxes["project"].ID},
		[][]int{{boxes["project"].ID}})
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := newTestGraph(t)
	before := len(g2.Boxes())
	if _, err := Instantiate(g2, def, []Filler{{Kind: "stitch", Params: Params{"n": "1"}}}); err == nil {
		t.Fatal("bad filler accepted")
	}
	if len(g2.Boxes()) != before {
		t.Errorf("failed instantiation left %d boxes", len(g2.Boxes())-before)
	}
}
