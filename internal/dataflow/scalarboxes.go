package dataflow

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/types"
)

// Scalar-valued edges: "a box input or output may be a scalar value
// (e.g., a runtime parameter supplied by the user)" (Section 2). The
// const box is the scalar source — the runtime parameter the user sets
// from the menu — and parameterized boxes take scalar inputs so that a
// single dial drives several places in a program (wire one const through
// T boxes).

func registerScalarBoxes(r *Registry) {
	r.MustRegister(&Kind{
		Name:          "const",
		Doc:           "Runtime parameter: produce the scalar 'value' of type 'type' on the output (Section 2 scalar edges).",
		ExampleParams: Params{"type": "float", "value": "1"},
		Ports: func(p Params) ([]PortType, []PortType, error) {
			k, err := types.ParseKind(p.Str("type", "float"))
			if err != nil {
				return nil, nil, err
			}
			return nil, []PortType{ScalarType(k)}, nil
		},
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			k, err := types.ParseKind(p.Str("type", "float"))
			if err != nil {
				return nil, err
			}
			raw, err := p.Need("value")
			if err != nil {
				return nil, err
			}
			v, err := types.Parse(k, raw)
			if err != nil {
				return nil, err
			}
			return []Value{v}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "threshold",
		Doc:           "Parameterized Restrict: keep tuples whose numeric attribute 'attr' satisfies 'op' against the scalar on input 1 (a runtime parameter).",
		ExampleParams: Params{"attr": "a", "op": "<="},
		Ports:         fixedPorts([]PortType{RType, ScalarType(types.Float)}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			bound, ok := in[1].(types.Value)
			if !ok {
				return nil, fmt.Errorf("threshold: input 1 is not a scalar (%T)", in[1])
			}
			f, fok := bound.AsFloat()
			if !fok {
				return nil, fmt.Errorf("threshold: parameter is not numeric")
			}
			attr, err := p.Need("attr")
			if err != nil {
				return nil, err
			}
			op := p.Str("op", "<=")
			switch op {
			case "<", "<=", ">", ">=", "=", "!=":
			default:
				return nil, fmt.Errorf("threshold: unknown op %q", op)
			}
			pred := &expr.Binary{
				Op: op,
				L:  &expr.Ref{Name: attr},
				R:  &expr.Lit{Val: types.NewFloat(f)},
			}
			out, err := rel.Restrict(e.Rel, pred)
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, out)}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "samplep",
		Doc:           "Parameterized Sample: retain tuples with the probability supplied on the scalar input 1 — a live interactivity dial.",
		ExampleParams: Params{},
		Ports:         fixedPorts([]PortType{RType, ScalarType(types.Float)}, []PortType{RType}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			prob, ok := in[1].(types.Value)
			if !ok {
				return nil, fmt.Errorf("samplep: input 1 is not a scalar (%T)", in[1])
			}
			f, fok := prob.AsFloat()
			if !fok {
				return nil, fmt.Errorf("samplep: probability is not numeric")
			}
			seed, err := p.Int("seed", 1)
			if err != nil {
				return nil, err
			}
			out, err := rel.Sample(e.Rel, f, int64(seed))
			if err != nil {
				return nil, err
			}
			return []Value{rederive(e, out)}, nil
		},
	})

	r.MustRegister(&Kind{
		Name:          "count",
		Doc:           "Aggregate a relation to its cardinality as a scalar int output — a scalar-producing displayable consumer.",
		ExampleParams: Params{},
		Ports:         fixedPorts([]PortType{RType}, []PortType{ScalarType(types.Int)}),
		Fire: func(fc *FireContext, p Params, in []Value) ([]Value, error) {
			e, err := asExtended(in[0])
			if err != nil {
				return nil, err
			}
			return []Value{types.NewInt(int64(e.Rel.Len()))}, nil
		},
	})
}
