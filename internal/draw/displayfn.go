package draw

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/geom"
	"repro/internal/types"
)

// Func computes a tuple's display list from its attributes — the display
// attribute as a method of the base tuple (Section 5.1). Display functions
// are composed with CombineFuncs (the Combine Displays operation) and
// evaluated per visible tuple only, after culling.
type Func func(env expr.Env) (List, error)

// ConstFunc returns a display function producing a fixed list regardless
// of the tuple, e.g. the plain circle marker of Figure 4.
func ConstFunc(l List) Func {
	return func(expr.Env) (List, error) { return l, nil }
}

// TextAttr returns a display function rendering the named attribute's
// value as text at the given offset — the station-name labels of Figure 4.
func TextAttr(attr string, offset geom.Point, size float64, color Color) Func {
	return func(env expr.Env) (List, error) {
		v, ok := env.AttrValue(attr)
		if !ok {
			return nil, fmt.Errorf("draw: text display: no attribute %q", attr)
		}
		if v.IsNull() {
			return nil, nil
		}
		return List{Text{Offset: offset, S: v.String(), Size: size, Color: color}}, nil
	}
}

// TextExpr renders an arbitrary expression's value as text.
func TextExpr(e expr.Node, offset geom.Point, size float64, color Color) Func {
	return func(env expr.Env) (List, error) {
		v, err := expr.Eval(e, env)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		return List{Text{Offset: offset, S: v.String(), Size: size, Color: color}}, nil
	}
}

// CircleMarker returns a display function producing a circle whose radius
// may be data-driven (radiusExpr may be nil for a constant radius).
func CircleMarker(radius float64, radiusExpr expr.Node, color Color, style Style) Func {
	return func(env expr.Env) (List, error) {
		r := radius
		if radiusExpr != nil {
			v, err := expr.Eval(radiusExpr, env)
			if err != nil {
				return nil, err
			}
			if f, ok := v.AsFloat(); ok {
				r = f
			}
		}
		return List{Circle{R: r, Color: color, Style: style}}, nil
	}
}

// LineSegment returns a display function drawing a segment whose endpoints
// come from four numeric attributes relative to the tuple location — the
// representation used for the Louisiana border-line relation of Figure 7.
func LineSegment(dxAttr, dyAttr string, color Color, style Style) Func {
	return func(env expr.Env) (List, error) {
		dx, okx := env.AttrValue(dxAttr)
		dy, oky := env.AttrValue(dyAttr)
		if !okx || !oky {
			return nil, fmt.Errorf("draw: line display: missing attribute %q or %q", dxAttr, dyAttr)
		}
		fx, okx := dx.AsFloat()
		fy, oky := dy.AsFloat()
		if !okx || !oky {
			return nil, nil
		}
		return List{Line{Delta: geom.Pt(fx, fy), Color: color, Style: style}}, nil
	}
}

// Wormhole returns a display function producing a viewer drawable whose
// destination location is computed from tuple attributes, so zooming into
// station s lands the user on s's slice of the destination canvas
// (Figure 8). sliderExprs, when given, pin the destination's slider
// dimensions to per-tuple values (slider i pinned to sliderExprs[i]).
func Wormhole(w, h float64, destCanvas string, destElevation float64, destXAttr, destYAttr string, sliderExprs []expr.Node, border Color) Func {
	return func(env expr.Env) (List, error) {
		var loc geom.Point
		if destXAttr != "" {
			v, ok := env.AttrValue(destXAttr)
			if !ok {
				return nil, fmt.Errorf("draw: wormhole: no attribute %q", destXAttr)
			}
			if f, fok := v.AsFloat(); fok {
				loc.X = f
			}
		}
		if destYAttr != "" {
			v, ok := env.AttrValue(destYAttr)
			if !ok {
				return nil, fmt.Errorf("draw: wormhole: no attribute %q", destYAttr)
			}
			if f, fok := v.AsFloat(); fok {
				loc.Y = f
			}
		}
		var sliders []geom.Range
		for _, se := range sliderExprs {
			v, err := expr.Eval(se, env)
			if err != nil {
				return nil, fmt.Errorf("draw: wormhole slider: %w", err)
			}
			if f, ok := v.AsFloat(); ok {
				sliders = append(sliders, geom.Range{Lo: f, Hi: f})
			} else {
				return nil, fmt.Errorf("draw: wormhole slider expression produced non-numeric %s", v.Kind())
			}
		}
		return List{Viewer{
			W: w, H: h,
			DestCanvas:    destCanvas,
			DestElevation: destElevation,
			DestLocation:  loc,
			DestSliders:   sliders,
			Border:        border,
		}}, nil
	}
}

// CombineFuncs implements Combine Displays at the function level: the
// result evaluates a then b and overlays b at the given offset.
func CombineFuncs(a, b Func, offset geom.Point) Func {
	return func(env expr.Env) (List, error) {
		la, err := a(env)
		if err != nil {
			return nil, err
		}
		lb, err := b(env)
		if err != nil {
			return nil, err
		}
		return Combine(la, lb, offset), nil
	}
}

// DefaultValueDisplay is the default display for one atomic value: its
// textual rendering (Section 5.2 — "the major relational DBMS vendors all
// have so-called terminal monitors" producing ASCII displays).
func DefaultValueDisplay(v types.Value, offset geom.Point, color Color) List {
	return List{Text{Offset: offset, S: v.String(), Size: 1, Color: color}}
}

// DefaultTupleDisplay builds the default display for a whole tuple: "the
// default display for a relation renders each field in the tuple, side by
// side, using the default display for each column type" (Section 5.2).
// attrs is the ordered attribute list; columnWidth is the horizontal
// allotment per field in canvas units.
func DefaultTupleDisplay(attrs []string, columnWidth float64, color Color) Func {
	return func(env expr.Env) (List, error) {
		var out List
		for i, a := range attrs {
			v, ok := env.AttrValue(a)
			if !ok {
				return nil, fmt.Errorf("draw: default display: no attribute %q", a)
			}
			out = append(out, DefaultValueDisplay(v, geom.Pt(float64(i)*columnWidth, 0), color)...)
		}
		return out, nil
	}
}
