package draw

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/geom"
)

// ParseSpec compiles a textual display specification into a display
// function. Display attributes must be serializable with the program
// (Save Program stores everything in the database), so the ops layer
// records display definitions in this little language and rebuilds the
// functions on load.
//
// Grammar: one or more primitive specs joined by "+" (list order = drawing
// order). Each primitive is a word followed by key=value fields:
//
//	circle r=2.5 [rexpr='...'] [color=red] [fill] [dx=0 dy=0]
//	point [color=black] [dx= dy=]
//	rect w=4 h=3 [color=..] [fill] [dx= dy=]
//	line dxattr=segdx dyattr=segdy [color=..] [width=1] | line dx=4 dy=2 ...
//	polygon pts=x1,y1;x2,y2;... [color=..] [fill]
//	text attr=name [size=1] [color=..] [dx= dy=]
//	label expr='name || str(id)' [size=1] [color=..] [dx= dy=]
//	value s='literal text' [size=1] [color=..] [dx= dy=]
//	wormhole w=10 h=8 dest=CanvasName elev=40 [xattr=..] [yattr=..] [color=..]
//
// String values containing spaces are single-quoted.
func ParseSpec(spec string) (Func, error) {
	parts, err := splitTop(spec, '+')
	if err != nil {
		return nil, err
	}
	var out Func
	for _, p := range parts {
		f, err := parsePrimitive(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = f
		} else {
			out = CombineFuncs(out, f, geom.Point{})
		}
	}
	if out == nil {
		return nil, fmt.Errorf("draw: empty display spec")
	}
	return out, nil
}

// splitTop splits on sep outside single quotes.
func splitTop(s string, sep byte) ([]string, error) {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			depth = !depth
		case sep:
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth {
		return nil, fmt.Errorf("draw: unterminated quote in spec %q", s)
	}
	out = append(out, s[start:])
	return out, nil
}

// fields splits a primitive spec into word and key=value tokens honoring
// quotes.
func fields(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'':
			inQuote = !inQuote
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

type specArgs struct {
	word  string
	kv    map[string]string
	flags map[string]bool
}

func parseArgs(s string) (*specArgs, error) {
	toks := fields(s)
	if len(toks) == 0 {
		return nil, fmt.Errorf("draw: empty primitive in spec")
	}
	a := &specArgs{word: toks[0], kv: map[string]string{}, flags: map[string]bool{}}
	for _, t := range toks[1:] {
		if eq := strings.IndexByte(t, '='); eq >= 0 {
			v := t[eq+1:]
			v = strings.Trim(v, "'")
			a.kv[t[:eq]] = v
		} else {
			a.flags[t] = true
		}
	}
	return a, nil
}

func (a *specArgs) float(key string, def float64) (float64, error) {
	s, ok := a.kv[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("draw: %s: bad %s=%q", a.word, key, s)
	}
	return f, nil
}

func (a *specArgs) color(def Color) (Color, error) {
	s, ok := a.kv["color"]
	if !ok {
		return def, nil
	}
	return ParseColor(s)
}

func (a *specArgs) style() (Style, error) {
	w, err := a.float("width", 1)
	if err != nil {
		return Style{}, err
	}
	return Style{Fill: a.flags["fill"], LineWidth: w}, nil
}

func (a *specArgs) offset() (geom.Point, error) {
	dx, err := a.float("dx", 0)
	if err != nil {
		return geom.Point{}, err
	}
	dy, err := a.float("dy", 0)
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(dx, dy), nil
}

func parsePrimitive(s string) (Func, error) {
	a, err := parseArgs(s)
	if err != nil {
		return nil, err
	}
	color, err := a.color(Black)
	if err != nil {
		return nil, err
	}
	style, err := a.style()
	if err != nil {
		return nil, err
	}
	off, err := a.offset()
	if err != nil {
		return nil, err
	}
	f, err := parsePrimitiveBody(a, color, style, off)
	if err != nil {
		return nil, err
	}
	// Data-driven offsets: dxexpr=/dyexpr= shift the primitive by
	// per-tuple expression values, e.g. placing a precipitation marker at
	// its own height on a temperature canvas (Figure 9).
	return applyExprOffset(a, f)
}

// applyExprOffset wraps f so its output is shifted by the values of the
// dxexpr/dyexpr expressions, when given.
func applyExprOffset(a *specArgs, f Func) (Func, error) {
	dxSrc, hasDX := a.kv["dxexpr"]
	dySrc, hasDY := a.kv["dyexpr"]
	if !hasDX && !hasDY {
		return f, nil
	}
	var dxe, dye expr.Node
	var err error
	if hasDX {
		dxe, err = expr.Parse(dxSrc)
		if err != nil {
			return nil, fmt.Errorf("draw: %s dxexpr: %w", a.word, err)
		}
	}
	if hasDY {
		dye, err = expr.Parse(dySrc)
		if err != nil {
			return nil, fmt.Errorf("draw: %s dyexpr: %w", a.word, err)
		}
	}
	evalF := func(e expr.Node, env expr.Env) (float64, error) {
		if e == nil {
			return 0, nil
		}
		v, err := expr.Eval(e, env)
		if err != nil {
			return 0, err
		}
		f, _ := v.AsFloat()
		return f, nil
	}
	return func(env expr.Env) (List, error) {
		l, err := f(env)
		if err != nil {
			return nil, err
		}
		dx, err := evalF(dxe, env)
		if err != nil {
			return nil, err
		}
		dy, err := evalF(dye, env)
		if err != nil {
			return nil, err
		}
		return l.WithOffset(geom.Pt(dx, dy)), nil
	}, nil
}

func parsePrimitiveBody(a *specArgs, color Color, style Style, off geom.Point) (Func, error) {
	switch a.word {
	case "point":
		return ConstFunc(List{Point{Offset: off, Color: color}}), nil

	case "circle":
		r, err := a.float("r", 2)
		if err != nil {
			return nil, err
		}
		var rexpr expr.Node
		if src, ok := a.kv["rexpr"]; ok {
			rexpr, err = expr.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("draw: circle rexpr: %w", err)
			}
		}
		f := CircleMarker(r, rexpr, color, style)
		return offsetFunc(f, off), nil

	case "rect":
		w, err := a.float("w", 4)
		if err != nil {
			return nil, err
		}
		h, err := a.float("h", 4)
		if err != nil {
			return nil, err
		}
		return ConstFunc(List{Rect{Offset: off, W: w, H: h, Color: color, Style: style}}), nil

	case "bar":
		// A filled bar rising from the tuple's baseline with data-driven
		// height: bar w=0.5 hexpr='precipitation * 4'. Negative heights
		// hang below the baseline.
		w, err := a.float("w", 1)
		if err != nil {
			return nil, err
		}
		hSrc, ok := a.kv["hexpr"]
		if !ok {
			return nil, fmt.Errorf("draw: bar needs hexpr=")
		}
		he, err := expr.Parse(hSrc)
		if err != nil {
			return nil, fmt.Errorf("draw: bar hexpr: %w", err)
		}
		return func(env expr.Env) (List, error) {
			v, err := expr.Eval(he, env)
			if err != nil {
				return nil, err
			}
			h, ok := v.AsFloat()
			if !ok {
				return nil, nil
			}
			r := Rect{Offset: off, W: w, H: h, Color: color, Style: Style{Fill: true, LineWidth: style.LineWidth}}
			if h < 0 {
				r.Offset = r.Offset.Add(geom.Pt(0, h))
				r.H = -h
			}
			return List{r}, nil
		}, nil

	case "line":
		if dxa, ok := a.kv["dxattr"]; ok {
			dya := a.kv["dyattr"]
			if dya == "" {
				return nil, fmt.Errorf("draw: line needs both dxattr and dyattr")
			}
			return offsetFunc(LineSegment(dxa, dya, color, style), off), nil
		}
		dx, err := a.float("ddx", 4)
		if err != nil {
			return nil, err
		}
		dy, err := a.float("ddy", 0)
		if err != nil {
			return nil, err
		}
		return ConstFunc(List{Line{Offset: off, Delta: geom.Pt(dx, dy), Color: color, Style: style}}), nil

	case "polygon":
		ptsSpec, ok := a.kv["pts"]
		if !ok {
			return nil, fmt.Errorf("draw: polygon needs pts=x,y;x,y;...")
		}
		var verts []geom.Point
		for _, pair := range strings.Split(ptsSpec, ";") {
			xy := strings.Split(pair, ",")
			if len(xy) != 2 {
				return nil, fmt.Errorf("draw: polygon: bad vertex %q", pair)
			}
			x, err1 := strconv.ParseFloat(strings.TrimSpace(xy[0]), 64)
			y, err2 := strconv.ParseFloat(strings.TrimSpace(xy[1]), 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("draw: polygon: bad vertex %q", pair)
			}
			verts = append(verts, geom.Pt(x, y))
		}
		if len(verts) < 3 {
			return nil, fmt.Errorf("draw: polygon needs at least 3 vertices")
		}
		return ConstFunc(List{Polygon{Offset: off, Vertices: verts, Color: color, Style: style}}), nil

	case "text":
		attr, ok := a.kv["attr"]
		if !ok {
			return nil, fmt.Errorf("draw: text needs attr=")
		}
		size, err := a.float("size", 1)
		if err != nil {
			return nil, err
		}
		return TextAttr(attr, off, size, color), nil

	case "label":
		src, ok := a.kv["expr"]
		if !ok {
			return nil, fmt.Errorf("draw: label needs expr=")
		}
		e, err := expr.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("draw: label expr: %w", err)
		}
		size, err := a.float("size", 1)
		if err != nil {
			return nil, err
		}
		return TextExpr(e, off, size, color), nil

	case "value":
		s, ok := a.kv["s"]
		if !ok {
			return nil, fmt.Errorf("draw: value needs s=")
		}
		size, err := a.float("size", 1)
		if err != nil {
			return nil, err
		}
		return ConstFunc(List{Text{Offset: off, S: s, Size: size, Color: color}}), nil

	case "wormhole":
		w, err := a.float("w", 10)
		if err != nil {
			return nil, err
		}
		h, err := a.float("h", 8)
		if err != nil {
			return nil, err
		}
		dest, ok := a.kv["dest"]
		if !ok {
			return nil, fmt.Errorf("draw: wormhole needs dest=")
		}
		elev, err := a.float("elev", 10)
		if err != nil {
			return nil, err
		}
		var sliderExprs []expr.Node
		if src, ok := a.kv["sliders"]; ok {
			for _, part := range strings.Split(src, ";") {
				part = strings.TrimSpace(part)
				if part == "" {
					continue
				}
				se, err := expr.Parse(part)
				if err != nil {
					return nil, fmt.Errorf("draw: wormhole sliders: %w", err)
				}
				sliderExprs = append(sliderExprs, se)
			}
		}
		f := Wormhole(w, h, dest, elev, a.kv["xattr"], a.kv["yattr"], sliderExprs, color)
		return offsetFunc(f, off), nil
	}
	return nil, fmt.Errorf("draw: unknown display primitive %q", a.word)
}

// offsetFunc shifts every drawable a function produces.
func offsetFunc(f Func, off geom.Point) Func {
	if off == (geom.Point{}) {
		return f
	}
	return func(env expr.Env) (List, error) {
		l, err := f(env)
		if err != nil {
			return nil, err
		}
		return l.WithOffset(off), nil
	}
}
