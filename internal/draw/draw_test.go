package draw

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/geom"
	"repro/internal/types"
)

func TestParseColor(t *testing.T) {
	c, err := ParseColor("red")
	if err != nil || c != Red {
		t.Fatalf("red = %v, %v", c, err)
	}
	c, err = ParseColor("#0a141e")
	if err != nil || c != (Color{10, 20, 30, 255}) {
		t.Fatalf("hex = %v, %v", c, err)
	}
	if _, err := ParseColor("mauve-ish"); err == nil {
		t.Error("unknown color accepted")
	}
	// Round trip via String.
	back, err := ParseColor(Blue.String())
	if err != nil || back != Blue {
		t.Fatalf("round trip = %v, %v", back, err)
	}
}

func TestDrawableBounds(t *testing.T) {
	cases := []struct {
		d    Drawable
		want geom.Rect
	}{
		{Line{Offset: geom.Pt(1, 1), Delta: geom.Pt(3, -2)}, geom.R(1, -1, 4, 1)},
		{Rect{Offset: geom.Pt(0, 0), W: 5, H: 2}, geom.R(0, 0, 5, 2)},
		{Circle{Offset: geom.Pt(10, 10), R: 3}, geom.R(7, 7, 13, 13)},
		{Polygon{Offset: geom.Pt(1, 1), Vertices: []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 3}}}, geom.R(1, 1, 3, 4)},
		{Viewer{Offset: geom.Pt(2, 2), W: 4, H: 3}, geom.R(2, 2, 6, 5)},
	}
	for _, c := range cases {
		if got := c.d.Bounds(); got != c.want {
			t.Errorf("%s bounds = %v, want %v", c.d, got, c.want)
		}
	}
	// Text bounds track length and size.
	txt := Text{Offset: geom.Pt(0, 0), S: "abcd", Size: 2}
	b := txt.Bounds()
	if b.W() != 4*GlyphW*2 || b.H() != GlyphH*2 {
		t.Errorf("text bounds = %v", b)
	}
}

func TestWithOffset(t *testing.T) {
	var d Drawable = Circle{Offset: geom.Pt(1, 1), R: 2}
	moved := d.WithOffset(geom.Pt(10, 20))
	if moved.Bounds() != geom.R(9, 19, 13, 23) {
		t.Errorf("moved bounds = %v", moved.Bounds())
	}
	// Original unchanged (value semantics).
	if d.Bounds() != geom.R(-1, -1, 3, 3) {
		t.Error("WithOffset mutated the original")
	}
}

func TestListCombine(t *testing.T) {
	a := List{Circle{R: 1}}
	b := List{Text{S: "x", Size: 1}}
	out := Combine(a, b, geom.Pt(0, -5))
	if len(out) != 2 {
		t.Fatalf("combined %d drawables", len(out))
	}
	// b's member shifted.
	if out[1].Bounds().Min.Y != -5 {
		t.Errorf("offset not applied: %v", out[1].Bounds())
	}
	// inputs untouched.
	if len(a) != 1 || len(b) != 1 {
		t.Error("inputs mutated")
	}
}

func TestListBounds(t *testing.T) {
	l := List{
		Circle{Offset: geom.Pt(0, 0), R: 1},
		Circle{Offset: geom.Pt(10, 0), R: 1},
	}
	if got := l.Bounds(); got != geom.R(-1, -1, 11, 1) {
		t.Errorf("list bounds = %v", got)
	}
	if (List{}).Bounds() != (geom.Rect{}) {
		t.Error("empty list bounds")
	}
}

var env = expr.MapEnv{
	"name":  types.NewText("Baton Rouge"),
	"lon":   types.NewFloat(-91.1),
	"r":     types.NewFloat(3.5),
	"nullv": types.Null,
}

func TestTextAttr(t *testing.T) {
	f := TextAttr("name", geom.Pt(0, -2), 1, Black)
	l, err := f(env)
	if err != nil {
		t.Fatal(err)
	}
	txt := l[0].(Text)
	if txt.S != "Baton Rouge" || txt.Offset != geom.Pt(0, -2) {
		t.Errorf("text = %+v", txt)
	}
	// Null value renders nothing rather than "null".
	f = TextAttr("nullv", geom.Point{}, 1, Black)
	l, err = f(env)
	if err != nil || len(l) != 0 {
		t.Errorf("null attr -> %v, %v", l, err)
	}
	// Missing attribute is an error.
	f = TextAttr("ghost", geom.Point{}, 1, Black)
	if _, err := f(env); err == nil {
		t.Error("missing attr accepted")
	}
}

func TestCircleMarkerDataDriven(t *testing.T) {
	f := CircleMarker(1, expr.MustParse("r * 2"), Red, FillStyle)
	l, err := f(env)
	if err != nil {
		t.Fatal(err)
	}
	c := l[0].(Circle)
	if c.R != 7 {
		t.Errorf("radius = %g", c.R)
	}
}

func TestWormholeFunc(t *testing.T) {
	f := Wormhole(5, 4, "dest", 30, "lon", "", nil, Blue)
	l, err := f(env)
	if err != nil {
		t.Fatal(err)
	}
	wh := l[0].(Viewer)
	if wh.DestCanvas != "dest" || wh.DestElevation != 30 {
		t.Errorf("wormhole = %+v", wh)
	}
	if wh.DestLocation.X != -91.1 || wh.DestLocation.Y != 0 {
		t.Errorf("dest location = %v", wh.DestLocation)
	}
	f = Wormhole(5, 4, "dest", 30, "ghost", "", nil, Blue)
	if _, err := f(env); err == nil {
		t.Error("missing xattr accepted")
	}
}

func TestDefaultTupleDisplay(t *testing.T) {
	f := DefaultTupleDisplay([]string{"name", "lon"}, 50, Black)
	l, err := f(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 {
		t.Fatalf("%d drawables", len(l))
	}
	second := l[1].(Text)
	if second.Offset.X != 50 {
		t.Errorf("column offset = %v", second.Offset)
	}
	if second.S != "-91.1" {
		t.Errorf("value text = %q", second.S)
	}
	f = DefaultTupleDisplay([]string{"ghost"}, 50, Black)
	if _, err := f(env); err == nil {
		t.Error("missing attribute accepted")
	}
}

func TestParseSpecPrimitives(t *testing.T) {
	specs := []string{
		"point color=red",
		"circle r=2.5 color=blue fill",
		"circle r=1 rexpr='r * 2'",
		"rect w=4 h=3 dx=1 dy=1",
		"line ddx=5 ddy=2 width=2",
		"polygon pts=0,0;2,0;1,3 fill color=green",
		"text attr=name size=2",
		"label expr='name || str(lon)'",
		"value s='fixed text'",
		"wormhole w=5 h=4 dest=other elev=20 xattr=lon",
		"circle r=1 + text attr=name dy=-3",
		"circle r=1 dyexpr='r * 10'",
	}
	for _, spec := range specs {
		f, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		if _, err := f(env); err != nil {
			t.Errorf("eval of %q: %v", spec, err)
		}
	}
}

func TestParseSpecCombination(t *testing.T) {
	f, err := ParseSpec("circle r=1 + value s=lbl dy=-3 + point dx=2")
	if err != nil {
		t.Fatal(err)
	}
	l, err := f(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 3 {
		t.Fatalf("combined spec produced %d drawables", len(l))
	}
}

func TestParseSpecExprOffset(t *testing.T) {
	f, err := ParseSpec("circle r=1 dyexpr='r * 2'")
	if err != nil {
		t.Fatal(err)
	}
	l, err := f(env)
	if err != nil {
		t.Fatal(err)
	}
	c := l[0].(Circle)
	if c.Offset.Y != 7 {
		t.Errorf("dyexpr offset = %v", c.Offset)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"blob r=2",
		"circle r=abc",
		"text",                     // needs attr
		"label",                    // needs expr
		"label expr='(('",          // bad expr
		"wormhole w=5 h=4 elev=20", // needs dest
		"polygon pts=0,0;1,1",      // too few vertices
		"polygon pts=a,b;c,d;e,f",  // bad vertices
		"line dxattr=dx",           // needs dyattr
		"circle r=2 color=notacolor",
		"value s='unterminated",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) should fail", spec)
		}
	}
}

func TestSpecQuotedValues(t *testing.T) {
	f, err := ParseSpec("value s='two words here' size=1")
	if err != nil {
		t.Fatal(err)
	}
	l, _ := f(env)
	if txt := l[0].(Text); txt.S != "two words here" {
		t.Errorf("quoted value = %q", txt.S)
	}
}

func TestListString(t *testing.T) {
	l := List{Circle{R: 1}, Text{S: "x"}}
	s := l.String()
	if !strings.Contains(s, "circle") || !strings.Contains(s, "text") {
		t.Errorf("List.String = %q", s)
	}
}

func TestBarPrimitive(t *testing.T) {
	f, err := ParseSpec("bar w=0.5 hexpr='r * 2' color=blue")
	if err != nil {
		t.Fatal(err)
	}
	l, err := f(env) // r = 3.5
	if err != nil {
		t.Fatal(err)
	}
	bar := l[0].(Rect)
	if bar.H != 7 || bar.W != 0.5 || !bar.Style.Fill {
		t.Fatalf("bar = %+v", bar)
	}
	// Negative heights hang below the baseline.
	f, err = ParseSpec("bar w=1 hexpr='0 - r'")
	if err != nil {
		t.Fatal(err)
	}
	l, err = f(env)
	if err != nil {
		t.Fatal(err)
	}
	bar = l[0].(Rect)
	if bar.H != 3.5 || bar.Offset.Y != -3.5 {
		t.Fatalf("negative bar = %+v", bar)
	}
	if _, err := ParseSpec("bar w=1"); err == nil {
		t.Error("bar without hexpr accepted")
	}
	if _, err := ParseSpec("bar w=1 hexpr='(('"); err == nil {
		t.Error("bad hexpr accepted")
	}
}
