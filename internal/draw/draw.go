// Package draw defines the primitive drawable objects of Tioga-2 (Section
// 5.1): point, line, rectangle, circle, polygon, text, and viewer. "Each
// primitive drawable has an offset, a color, and a style. The offset gives
// a position relative to the location attributes of the tuple." A display
// attribute is a list of drawables; the list order is the drawing order.
// Viewer drawables implement wormholes (Section 6.2).
package draw

import (
	"fmt"
	"strings"

	"repro/internal/geom"
)

// Color is an 8-bit RGBA color.
type Color struct {
	R, G, B, A uint8
}

// Named colors used by defaults and examples.
var (
	Black   = Color{0, 0, 0, 255}
	White   = Color{255, 255, 255, 255}
	Red     = Color{200, 30, 30, 255}
	Green   = Color{30, 150, 60, 255}
	Blue    = Color{40, 70, 200, 255}
	Gray    = Color{128, 128, 128, 255}
	Yellow  = Color{220, 190, 30, 255}
	Cyan    = Color{30, 170, 190, 255}
	Magenta = Color{180, 50, 170, 255}
)

var colorNames = map[string]Color{
	"black": Black, "white": White, "red": Red, "green": Green,
	"blue": Blue, "gray": Gray, "grey": Gray, "yellow": Yellow,
	"cyan": Cyan, "magenta": Magenta,
}

// ParseColor resolves a color name or "#rrggbb" literal.
func ParseColor(s string) (Color, error) {
	if c, ok := colorNames[strings.ToLower(s)]; ok {
		return c, nil
	}
	var r, g, b uint8
	if n, err := fmt.Sscanf(strings.ToLower(s), "#%02x%02x%02x", &r, &g, &b); err == nil && n == 3 {
		return Color{r, g, b, 255}, nil
	}
	return Color{}, fmt.Errorf("draw: unknown color %q", s)
}

// String renders the color as #rrggbb (named colors keep their hex form;
// round-tripping through ParseColor is lossless).
func (c Color) String() string {
	return fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B)
}

// Style carries the per-drawable rendering style.
type Style struct {
	Fill      bool    // filled shape vs outline
	LineWidth float64 // stroke width in canvas units (min one pixel on screen)
}

// DefaultStyle is a thin outline.
var DefaultStyle = Style{Fill: false, LineWidth: 1}

// FillStyle is a filled shape.
var FillStyle = Style{Fill: true, LineWidth: 1}

// Font metrics for the embedded 5x7 bitmap font the rasterizer draws with.
// Text bounds must be computable here (for culling and Combine placement)
// without reaching into the rasterizer.
const (
	GlyphW = 6 // 5 pixel glyph + 1 pixel advance
	GlyphH = 8 // 7 pixel glyph + 1 pixel leading
)

// Drawable is one primitive screen object. All coordinates inside a
// drawable are offsets relative to the tuple's location attributes; the
// viewer resolves them to canvas coordinates at render time.
type Drawable interface {
	// Bounds returns the drawable's extent in offset space (relative to
	// the tuple location), used for culling and for Combine placement.
	Bounds() geom.Rect
	// WithOffset returns a copy shifted by d in offset space; Combine
	// Displays uses it to place one display relative to another.
	WithOffset(d geom.Point) Drawable
	// String renders a debug/spec form.
	String() string
}

// Point is a single pixel marker.
type Point struct {
	Offset geom.Point
	Color  Color
}

// Bounds implements Drawable.
func (p Point) Bounds() geom.Rect {
	return geom.R(p.Offset.X, p.Offset.Y, p.Offset.X+1e-9, p.Offset.Y+1e-9)
}

// WithOffset implements Drawable.
func (p Point) WithOffset(d geom.Point) Drawable {
	p.Offset = p.Offset.Add(d)
	return p
}

// String implements Drawable.
func (p Point) String() string { return fmt.Sprintf("point@%s %s", p.Offset, p.Color) }

// Line is a segment from Offset to Offset+Delta.
type Line struct {
	Offset geom.Point
	Delta  geom.Point
	Color  Color
	Style  Style
}

// Bounds implements Drawable.
func (l Line) Bounds() geom.Rect {
	end := l.Offset.Add(l.Delta)
	return geom.R(l.Offset.X, l.Offset.Y, end.X, end.Y)
}

// WithOffset implements Drawable.
func (l Line) WithOffset(d geom.Point) Drawable {
	l.Offset = l.Offset.Add(d)
	return l
}

// String implements Drawable.
func (l Line) String() string {
	return fmt.Sprintf("line@%s+%s %s", l.Offset, l.Delta, l.Color)
}

// Rect is an axis-aligned rectangle of size W x H anchored at Offset
// (lower-left corner).
type Rect struct {
	Offset geom.Point
	W, H   float64
	Color  Color
	Style  Style
}

// Bounds implements Drawable.
func (r Rect) Bounds() geom.Rect {
	return geom.R(r.Offset.X, r.Offset.Y, r.Offset.X+r.W, r.Offset.Y+r.H)
}

// WithOffset implements Drawable.
func (r Rect) WithOffset(d geom.Point) Drawable {
	r.Offset = r.Offset.Add(d)
	return r
}

// String implements Drawable.
func (r Rect) String() string {
	return fmt.Sprintf("rect@%s %gx%g %s", r.Offset, r.W, r.H, r.Color)
}

// Circle is a circle of radius R centered at Offset.
type Circle struct {
	Offset geom.Point
	R      float64
	Color  Color
	Style  Style
}

// Bounds implements Drawable.
func (c Circle) Bounds() geom.Rect {
	return geom.R(c.Offset.X-c.R, c.Offset.Y-c.R, c.Offset.X+c.R, c.Offset.Y+c.R)
}

// WithOffset implements Drawable.
func (c Circle) WithOffset(d geom.Point) Drawable {
	c.Offset = c.Offset.Add(d)
	return c
}

// String implements Drawable.
func (c Circle) String() string {
	return fmt.Sprintf("circle@%s r=%g %s", c.Offset, c.R, c.Color)
}

// Polygon is a closed polygon; Vertices are relative to Offset.
type Polygon struct {
	Offset   geom.Point
	Vertices []geom.Point
	Color    Color
	Style    Style
}

// Bounds implements Drawable.
func (p Polygon) Bounds() geom.Rect {
	if len(p.Vertices) == 0 {
		return geom.Rect{}
	}
	minX, minY := p.Vertices[0].X, p.Vertices[0].Y
	maxX, maxY := minX, minY
	for _, v := range p.Vertices[1:] {
		if v.X < minX {
			minX = v.X
		}
		if v.X > maxX {
			maxX = v.X
		}
		if v.Y < minY {
			minY = v.Y
		}
		if v.Y > maxY {
			maxY = v.Y
		}
	}
	return geom.R(minX, minY, maxX, maxY).Translate(p.Offset)
}

// WithOffset implements Drawable.
func (p Polygon) WithOffset(d geom.Point) Drawable {
	p.Offset = p.Offset.Add(d)
	return p
}

// String implements Drawable.
func (p Polygon) String() string {
	return fmt.Sprintf("polygon@%s %d vertices %s", p.Offset, len(p.Vertices), p.Color)
}

// Text is a string drawn at Offset with a size factor (1 = the native
// bitmap font size; the viewer scales text with elevation only through
// Size, keeping labels legible as the paper's Figure 7 requires).
type Text struct {
	Offset geom.Point
	S      string
	Size   float64 // multiplier over the native glyph size, in canvas units per pixel
	Color  Color
}

// Bounds implements Drawable.
func (t Text) Bounds() geom.Rect {
	size := t.Size
	if size <= 0 {
		size = 1
	}
	w := float64(len(t.S)) * GlyphW * size
	h := float64(GlyphH) * size
	return geom.R(t.Offset.X, t.Offset.Y, t.Offset.X+w, t.Offset.Y+h)
}

// WithOffset implements Drawable.
func (t Text) WithOffset(d geom.Point) Drawable {
	t.Offset = t.Offset.Add(d)
	return t
}

// String implements Drawable.
func (t Text) String() string { return fmt.Sprintf("text@%s %q %s", t.Offset, t.S, t.Color) }

// Viewer is the wormhole drawable (Section 6.2): "a viewer onto another
// canvas". It requires "the size for the viewer, a destination canvas, the
// elevation from which the canvas is viewed, and the initial location".
type Viewer struct {
	Offset        geom.Point
	W, H          float64    // size of the wormhole window on this canvas
	DestCanvas    string     // name of the destination canvas
	DestElevation float64    // elevation from which the destination is viewed
	DestLocation  geom.Point // initial location on the destination canvas
	// DestSliders pins the destination's slider dimensions on traversal,
	// so zooming into station s lands the user viewing s's data
	// (Section 6.2: "the user is initially positioned viewing the data
	// for station s"). Entry i applies to slider dimension i; nil leaves
	// the slider untouched.
	DestSliders []geom.Range
	Border      Color
}

// Bounds implements Drawable.
func (v Viewer) Bounds() geom.Rect {
	return geom.R(v.Offset.X, v.Offset.Y, v.Offset.X+v.W, v.Offset.Y+v.H)
}

// WithOffset implements Drawable.
func (v Viewer) WithOffset(d geom.Point) Drawable {
	v.Offset = v.Offset.Add(d)
	return v
}

// String implements Drawable.
func (v Viewer) String() string {
	return fmt.Sprintf("viewer@%s %gx%g -> %s@%g%s",
		v.Offset, v.W, v.H, v.DestCanvas, v.DestElevation, v.DestLocation)
}

// List is a display attribute value: an ordered list of drawables, drawn
// in list order.
type List []Drawable

// Bounds returns the union of all member bounds.
func (l List) Bounds() geom.Rect {
	var out geom.Rect
	for _, d := range l {
		out = out.Union(d.Bounds())
	}
	return out
}

// WithOffset shifts every member.
func (l List) WithOffset(d geom.Point) List {
	out := make(List, len(l))
	for i, m := range l {
		out[i] = m.WithOffset(d)
	}
	return out
}

// Combine implements the Combine Displays operation (Figure 5): append b
// to a with b shifted by offset, producing a new display list. List order
// preserves a-then-b drawing order.
func Combine(a, b List, offset geom.Point) List {
	out := make(List, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b.WithOffset(offset)...)
	return out
}

// String renders the list for program inspection.
func (l List) String() string {
	parts := make([]string, len(l))
	for i, d := range l {
		parts[i] = d.String()
	}
	return "[" + strings.Join(parts, "; ") + "]"
}
