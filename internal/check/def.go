package check

import (
	"fmt"

	"repro/internal/dataflow"
)

// Def checks an encapsulated box definition — the graphical procedure of
// Section 4.1, "something akin to a macro or (more accurately) a
// higher-order function" — for internal consistency before it is ever
// instantiated: local box indices resolve, ordinary boxes have known
// kinds with valid parameters, hole placeholders map one-to-one onto the
// declared hole signatures, and the ports edges and boundary references
// use on each placeholder stay within that hole's signature. Instantiate
// re-validates fillers at expansion time; Def catches a corrupt stored
// definition the moment it is loaded or vetted.
func Def(reg *dataflow.Registry, def *dataflow.EncapDef) []Diagnostic {
	var out []Diagnostic
	report := func(code Code, box int, kind, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Code: code, Severity: Error, Box: box, Port: -1, Kind: kind,
			Message: fmt.Sprintf(format, args...),
		})
	}

	// Hole placeholders: every BoxSpec.Hole must index a declared hole,
	// and every declared hole must have exactly one placeholder.
	holeBox := make(map[int]int) // hole index -> local box index
	for i, b := range def.Boxes {
		if b.Hole < 0 {
			if !reg.Has(b.Kind) {
				report(CodeUnknownKind, i, b.Kind, "definition %q box %d: unknown kind %q", def.Name, i, b.Kind)
				continue
			}
			k, _ := reg.Kind(b.Kind)
			if _, _, err := k.Ports(b.Params); err != nil {
				report(CodeBadParam, i, b.Kind, "definition %q box %d (%s): %v", def.Name, i, b.Kind, err)
			}
			continue
		}
		if b.Hole >= len(def.Holes) {
			report(CodeHoleMismatch, i, "hole", "definition %q box %d names hole %d; only %d hole(s) declared",
				def.Name, i, b.Hole, len(def.Holes))
			continue
		}
		if prev, dup := holeBox[b.Hole]; dup {
			report(CodeHoleMismatch, i, "hole", "definition %q: hole %d has two placeholders (boxes %d and %d)",
				def.Name, b.Hole, prev, i)
			continue
		}
		holeBox[b.Hole] = i
	}
	for hi := range def.Holes {
		if _, ok := holeBox[hi]; !ok {
			report(CodeHoleMismatch, -1, "", "definition %q: hole %d has no placeholder box", def.Name, hi)
		}
	}

	// Edge and boundary references must land on existing local boxes, and
	// the ports they use on a placeholder must fit the hole's signature.
	// usedIn/usedOut track the highest port touched per placeholder so a
	// signature shorter than its usage is reported once, precisely.
	inBox := func(i int) bool { return i >= 0 && i < len(def.Boxes) }
	checkHolePort := func(local, port int, input bool, what string) {
		if !inBox(local) || def.Boxes[local].Hole < 0 {
			return
		}
		h := def.Holes[def.Boxes[local].Hole]
		sig, dir := len(h.Out), "output"
		if input {
			sig, dir = len(h.In), "input"
		}
		if port >= sig {
			report(CodeHoleMismatch, local, "hole",
				"definition %q: %s uses %s %d of hole %d, whose signature declares %d %s(s)",
				def.Name, what, dir, port, def.Boxes[local].Hole, sig, dir)
		}
	}
	for _, e := range def.Edges {
		if !inBox(e.From) || !inBox(e.To) {
			report(CodeDanglingEdge, -1, "", "definition %q: edge %s references a box outside 0..%d",
				def.Name, e, len(def.Boxes)-1)
			continue
		}
		checkHolePort(e.From, e.FromPort, false, fmt.Sprintf("edge %s", e))
		checkHolePort(e.To, e.ToPort, true, fmt.Sprintf("edge %s", e))
	}
	for i, p := range def.Inputs {
		if !inBox(p.Box) {
			report(CodeDanglingEdge, -1, "", "definition %q: input %d references missing box %d", def.Name, i, p.Box)
			continue
		}
		checkHolePort(p.Box, p.Port, true, fmt.Sprintf("exposed input %d", i))
	}
	for i, p := range def.Outputs {
		if !inBox(p.Box) {
			report(CodeDanglingEdge, -1, "", "definition %q: output %d references missing box %d", def.Name, i, p.Box)
			continue
		}
		checkHolePort(p.Box, p.Port, false, fmt.Sprintf("exposed output %d", i))
	}

	Sort(out)
	return out
}
