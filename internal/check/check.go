// Package check is the compiler-style front end for boxes-and-arrows
// programs: it analyzes a dataflow.Graph (or an encapsulated definition)
// without evaluating it and reports every problem at once as a list of
// coded, located Diagnostics — the static counterpart of the lazy
// evaluator's one-error-at-a-time plan failures. The paper specifies a
// typed language (typed ports, the displayable lattice R -> C -> G with
// operator lifting, graphical procedures with hole signatures); this
// package machine-checks those rules the way a DBMS validates a query
// before executing it.
//
// Diagnostic codes are stable: tools (tioga-vet, the shell's check
// command, CI) key on them, and DESIGN.md §10 documents the table.
package check

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataflow"
)

// Code identifies one diagnostic rule. Codes are append-only: a rule may
// be retired but its code is never reused.
type Code string

// The diagnostic code table (documented in DESIGN.md §10).
const (
	CodeCycle        Code = "TV001" // program graph contains a cycle
	CodeUnconnected  Code = "TV002" // input port has no incoming edge
	CodePortType     Code = "TV003" // edge or lifted operator violates port typing
	CodeDeadBox      Code = "TV004" // box output is computed but never consumed
	CodeHoleMismatch Code = "TV005" // encapsulated hole signature inconsistent
	CodeBadParam     Code = "TV006" // parameters fail the kind's port derivation
	CodeUnknownKind  Code = "TV007" // box kind not in the registry
	CodeDanglingEdge Code = "TV008" // edge references a missing box or port
	CodeDupInput     Code = "TV009" // two edges feed the same input port
)

// Severity grades a diagnostic. Errors make a program unrunnable (Eval
// would fail or misbehave); warnings flag suspicious but legal shapes.
type Severity int

// Severity levels.
const (
	Warning Severity = iota + 1
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one located finding: which rule fired, where (box and
// port when applicable), and why.
type Diagnostic struct {
	Code     Code
	Severity Severity
	Box      int    // box id, or -1 for program-level findings
	Port     int    // port index, or -1 when not port-specific
	Kind     string // box kind when known
	Message  string
}

// String renders the canonical single-line form:
//
//	TV002 error box 4 (join) port 1: input not connected
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", d.Code, d.Severity)
	if d.Box >= 0 {
		kind := d.Kind
		if kind == "" {
			kind = "?"
		}
		fmt.Fprintf(&b, " box %d (%s)", d.Box, kind)
	}
	if d.Port >= 0 {
		fmt.Fprintf(&b, " port %d", d.Port)
	}
	fmt.Fprintf(&b, ": %s", d.Message)
	return b.String()
}

// HasErrors reports whether any diagnostic is of Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Program checks a whole program and returns every diagnostic in
// deterministic (box, port, code) order. It layers the graph-wide
// analyses — dead boxes, lifted-operator type inference — on top of the
// structural validation shared with the evaluator's pre-flight
// (dataflow.ValidateGraph).
func Program(g *dataflow.Graph) []Diagnostic {
	diags := FromDataflow(dataflow.ValidateGraph(g))
	diags = append(diags, deadBoxes(g)...)
	diags = append(diags, liftChecks(g)...)
	Sort(diags)
	return diags
}

// ProgramData checks serialized program data: it loads permissively (so
// corrupt programs — the ones worth vetting — still parse), then merges
// loader-level findings (duplicate ids, duplicate input edges) with the
// full Program analysis. The error is non-nil only for undecodable JSON.
func ProgramData(reg *dataflow.Registry, data []byte) ([]Diagnostic, error) {
	g, loadDiags, err := dataflow.UnmarshalPermissive(reg, data)
	if err != nil {
		return nil, err
	}
	diags := FromDataflow(loadDiags)
	diags = append(diags, Program(g)...)
	Sort(diags)
	return diags, nil
}

// FromDataflow maps the evaluator-layer aggregate (dataflow.Diagnostics,
// sentinel causes under *dataflow.Error wrappers) onto coded
// Diagnostics, so both layers report one vocabulary.
func FromDataflow(in dataflow.Diagnostics) []Diagnostic {
	out := make([]Diagnostic, 0, len(in))
	for _, e := range in {
		d := Diagnostic{Box: e.Box, Port: e.Port, Kind: e.Kind, Severity: Error, Message: e.Err.Error()}
		switch {
		case errors.Is(e, dataflow.ErrCycle):
			d.Code = CodeCycle
		case errors.Is(e, dataflow.ErrUnconnected):
			d.Code = CodeUnconnected
		case errors.Is(e, dataflow.ErrPortType), errors.Is(e, dataflow.ErrNoSuchPort):
			d.Code = CodePortType
		case errors.Is(e, dataflow.ErrBadParam):
			d.Code = CodeBadParam
		case errors.Is(e, dataflow.ErrUnknownKind):
			d.Code = CodeUnknownKind
		case errors.Is(e, dataflow.ErrDanglingEdge):
			d.Code = CodeDanglingEdge
		case errors.Is(e, dataflow.ErrDuplicateInput):
			d.Code = CodeDupInput
		default:
			// Loader-level findings without a sentinel (duplicate box ids)
			// are structural corruption too.
			d.Code = CodeDanglingEdge
		}
		out = append(out, d)
	}
	return out
}

// deadBoxes warns about boxes whose declared outputs are all
// unconnected: their computation can never reach a viewer or another
// box. Zero-output kinds (viewer) are sinks by shape and exempt; a box
// with some outputs consumed and others free (switch, partition, T) is
// normal control flow and not flagged.
func deadBoxes(g *dataflow.Graph) []Diagnostic {
	var out []Diagnostic
	for _, b := range g.Boxes() {
		if len(b.Out) == 0 {
			continue
		}
		if len(g.OutputEdges(b.ID)) == 0 {
			out = append(out, Diagnostic{
				Code: CodeDeadBox, Severity: Warning, Box: b.ID, Port: -1, Kind: b.Kind,
				Message: fmt.Sprintf("dead box: none of its %d output(s) is connected", len(b.Out)),
			})
		}
	}
	return out
}

// liftChecks statically resolves the operator wrapped by each lift box
// (liftc, liftg) and type-checks it against the paper's equivalences
// R = Composite(R), C = Group(C): the inner operator must be R -> R for
// the lifting to reassemble the composite or group. The evaluator only
// discovers a violation when the box fires; here it is a TV003 before
// anything runs.
func liftChecks(g *dataflow.Graph) []Diagnostic {
	var out []Diagnostic
	reg := g.Registry()
	for _, b := range g.Boxes() {
		if b.Kind != "liftc" && b.Kind != "liftg" {
			continue
		}
		inner := b.Params.Str("kind", "")
		if inner == "" {
			out = append(out, Diagnostic{
				Code: CodeBadParam, Severity: Error, Box: b.ID, Port: -1, Kind: b.Kind,
				Message: "lift box has no 'kind' parameter naming the wrapped operator",
			})
			continue
		}
		k, err := reg.Kind(inner)
		if err != nil {
			out = append(out, Diagnostic{
				Code: CodeUnknownKind, Severity: Error, Box: b.ID, Port: -1, Kind: b.Kind,
				Message: fmt.Sprintf("lifted operator %q is not a registered kind", inner),
			})
			continue
		}
		iin, iout, err := k.Ports(innerParams(b.Params))
		if err != nil {
			out = append(out, Diagnostic{
				Code: CodeBadParam, Severity: Error, Box: b.ID, Port: -1, Kind: b.Kind,
				Message: fmt.Sprintf("lifted operator %q rejects its op.* parameters: %v", inner, err),
			})
			continue
		}
		if len(iin) != 1 || len(iout) != 1 || !iin[0].Equal(dataflow.RType) || !iout[0].Equal(dataflow.RType) {
			out = append(out, Diagnostic{
				Code: CodePortType, Severity: Error, Box: b.ID, Port: -1, Kind: b.Kind,
				Message: fmt.Sprintf("lifted operator %q is %s, not R -> R: %s lifting applies an R operation inside a %s",
					inner, signature(iin, iout), b.Kind, liftTarget(b.Kind)),
			})
		}
		for _, key := range []string{"member", "layer"} {
			if _, err := b.Params.Int(key, 0); err != nil {
				out = append(out, Diagnostic{
					Code: CodeBadParam, Severity: Error, Box: b.ID, Port: -1, Kind: b.Kind,
					Message: fmt.Sprintf("bad %q selection: %v", key, err),
				})
			}
		}
	}
	return out
}

// innerParams strips the "op." prefix under which a lift box nests the
// wrapped operator's own parameters (mirrors dataflow's fire-time
// unwrapping).
func innerParams(p dataflow.Params) dataflow.Params {
	out := dataflow.Params{}
	for k, v := range p {
		if rest, ok := strings.CutPrefix(k, "op."); ok {
			out[rest] = v
		}
	}
	return out
}

// signature renders a port shape like "C -> C" or "R,R -> R".
func signature(in, out []dataflow.PortType) string {
	var b strings.Builder
	for i, t := range in {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteString(" -> ")
	for i, t := range out {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func liftTarget(kind string) string {
	if kind == "liftc" {
		return "composite"
	}
	return "group"
}

// Sort orders diagnostics deterministically: by box, then port, then
// code, then message.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Box != b.Box {
			return a.Box < b.Box
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// Render formats diagnostics one per line, each prefixed with label
// (typically the program file or name) when non-empty.
func Render(label string, diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		if label != "" {
			b.WriteString(label)
			b.WriteString(": ")
		}
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
