package check

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataflow"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden runs the checker over every fixture program in testdata and
// compares the rendered diagnostics against the .golden file next to it.
// Program fixtures (tv*.json, mixed.json) go through ProgramData — the
// same permissive-load path tioga-vet uses — and definition fixtures
// (def_*.json) through UnmarshalDef + Def.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fixtures found")
	}
	reg := dataflow.NewRegistry()
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var diags []Diagnostic
			if strings.HasPrefix(name, "def_") {
				def, err := dataflow.UnmarshalDef(data)
				if err != nil {
					t.Fatalf("UnmarshalDef: %v", err)
				}
				diags = Def(reg, def)
			} else {
				if diags, err = ProgramData(reg, data); err != nil {
					t.Fatalf("ProgramData: %v", err)
				}
			}
			got := Render("", diags)
			golden := strings.TrimSuffix(file, ".json") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenCoversEveryCode guards the fixture suite itself: each TV code
// must appear in at least one golden file, so retiring a fixture (or a
// code silently changing) fails loudly.
func TestGoldenCoversEveryCode(t *testing.T) {
	goldens, err := filepath.Glob(filepath.Join("testdata", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, g := range goldens {
		b, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(b)
	}
	for _, code := range []Code{CodeCycle, CodeUnconnected, CodePortType, CodeDeadBox,
		CodeHoleMismatch, CodeBadParam, CodeUnknownKind, CodeDanglingEdge, CodeDupInput} {
		if !strings.Contains(all.String(), string(code)) {
			t.Errorf("no golden fixture exercises %s", code)
		}
	}
}

// TestLiftMismatchMessage pins the R/C/G lifting inference: wrapping a
// non-R->R operator in a lift box is a TV003 with the inferred signature
// in the message, before anything fires.
func TestLiftMismatchMessage(t *testing.T) {
	g := dataflow.NewGraph(dataflow.NewRegistry())
	b, err := g.AddBox("liftg", dataflow.LiftParams("union", nil, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	diags := Program(g)
	var found bool
	for _, d := range diags {
		if d.Code == CodePortType && d.Box == b.ID {
			found = true
			if !strings.Contains(d.Message, "R,R -> R") {
				t.Errorf("lift diagnostic lacks inferred signature: %s", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("no TV003 for lifted non-R->R operator; got %v", diags)
	}
}

// TestCleanProgram confirms a well-formed program yields no diagnostics.
func TestCleanProgram(t *testing.T) {
	g := dataflow.NewGraph(dataflow.NewRegistry())
	tb, _ := g.AddBox("table", dataflow.Params{"name": "cities"})
	rb, _ := g.AddBox("restrict", dataflow.Params{"pred": "true"})
	vb, _ := g.AddBox("viewer", nil)
	if err := g.Connect(tb.ID, 0, rb.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(rb.ID, 0, vb.ID, 0); err != nil {
		t.Fatal(err)
	}
	if diags := Program(g); len(diags) != 0 {
		t.Errorf("clean program produced diagnostics:\n%s", Render("", diags))
	}
}

// TestFusedChainStillChecked pins the contract between the static
// checker and the evaluator's plan-time fusion pass: a fusible
// restrict→project→restrict chain is checked exactly like any other
// program. Fusion happens inside the evaluator, after preflight, and is
// invisible here — so the TV002 and TV004 diagnostics the fused_chain
// fixture carries alongside its fusible chain must always surface.
func TestFusedChainStillChecked(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "fused_chain.json"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := ProgramData(dataflow.NewRegistry(), data)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Code]int{}
	for _, d := range diags {
		counts[d.Code]++
	}
	if counts[CodeUnconnected] != 1 || counts[CodeDeadBox] != 2 {
		t.Errorf("want one TV002 and two TV004s, got:\n%s", Render("", diags))
	}
}
