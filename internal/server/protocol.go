package server

// Wire protocol of the push server. Client→server messages are JSON
// text frames (ClientOp); server→client messages are JSON text frames
// (Hello, FrameMeta, GensMsg, ErrorMsg, discriminated by Type), and
// each FrameMeta is immediately followed by one binary frame carrying
// the PNG it describes.

// ClientOp is one viewer operation from a client. Op selects the
// operation; unused fields are ignored.
//
//	"pan"    relative pan by (DX, DY) canvas units on Member
//	"panTo"  absolute pan to (X, Y)
//	"zoom"   multiply elevation by Factor (>1 zooms out)
//	"elev"   set elevation to Elev
//	"view"   set center (X, Y) and elevation Elev in one step
//	"resize" resize the client's framebuffer to W×H pixels
//	"render" request a frame without changing the view
//	"update" edit one field of one tuple: the per-type update function
//	         for Table.Col is run against Input and the result written
//	         through the optimistic CAS path, validated against the
//	         session's pinned snapshot. A lost race surfaces as an
//	         ErrorMsg with Code "stale"; on success the commit flows
//	         back as a gens broadcast plus re-rendered frames.
type ClientOp struct {
	Op     string  `json:"op"`
	Member int     `json:"member,omitempty"`
	X      float64 `json:"x,omitempty"`
	Y      float64 `json:"y,omitempty"`
	DX     float64 `json:"dx,omitempty"`
	DY     float64 `json:"dy,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Elev   float64 `json:"elev,omitempty"`
	W      int     `json:"w,omitempty"`
	H      int     `json:"h,omitempty"`
	// Table/Row/Col/Input address one field for the "update" op; Input
	// is the user's textual input to the per-type update function.
	Table string `json:"table,omitempty"`
	Row   int    `json:"row,omitempty"`
	Col   string `json:"col,omitempty"`
	Input string `json:"input,omitempty"`
	// Token is echoed on the next frame this operation produces, so a
	// client can pair requests with responses.
	Token string `json:"token,omitempty"`
}

// Viewport identifies a client's view of member 0: pan center and
// elevation. Two clients with equal viewports, sizes, and generation
// vectors receive byte-identical frames.
type Viewport struct {
	CX   float64 `json:"cx"`
	CY   float64 `json:"cy"`
	Elev float64 `json:"elev"`
}

// Hello is the first message after attach.
type Hello struct {
	Type    string           `json:"type"` // "hello"
	Session string           `json:"session"`
	Client  string           `json:"client"`
	W       int              `json:"w"`
	H       int              `json:"h"`
	Tables  []string         `json:"tables"`
	Gens    map[string]int64 `json:"gens"`
	Snap    uint64           `json:"snap"`
}

// FrameMeta announces one rendered frame; the PNG follows as the next
// binary message.
type FrameMeta struct {
	Type     string           `json:"type"` // "frame"
	Seq      int64            `json:"seq"`  // per-client frame counter
	Token    string           `json:"token,omitempty"`
	W        int              `json:"w"`
	H        int              `json:"h"`
	Viewport Viewport         `json:"viewport"`
	Gens     map[string]int64 `json:"gens"` // generation vector the frame was rendered against
	Snap     uint64           `json:"snap"` // db commit sequence of that snapshot
	RenderNS int64            `json:"render_ns"`
	TraceID  uint64           `json:"trace_id,omitempty"`
	PNGBytes int              `json:"png_bytes"`
}

// GensMsg announces that the session advanced to a new snapshot; a
// fresh frame for the client's current viewport follows.
type GensMsg struct {
	Type string           `json:"type"` // "gens"
	Gens map[string]int64 `json:"gens"`
	Snap uint64           `json:"snap"`
}

// ErrorMsg reports a failed operation or render without dropping the
// connection. Code classifies machine-actionable failures: "stale"
// means an optimistic update lost its race with a concurrent writer
// (db.ErrSnapshotStale) and the client should re-read and retry
// against the fresh frame that follows.
type ErrorMsg struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// ErrorCodeStale is ErrorMsg.Code for an optimistic update rejected
// because the client's snapshot no longer matches the table.
const ErrorCodeStale = "stale"

// AckMsg confirms a state-changing operation that produces no frame of
// its own (today: "update"). Token echoes the request's token; the
// committed data arrives separately as a gens broadcast plus frame.
type AckMsg struct {
	Type  string `json:"type"` // "ack"
	Op    string `json:"op"`
	Token string `json:"token,omitempty"`
}
