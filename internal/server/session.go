package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/viewer"
)

// Builder constructs a session's dataflow program inside a fresh
// environment and returns the name of the canvas to serve.
// core.Figure7 is the stock demo builder.
type Builder func(env *core.Environment) (string, error)

// SessionOption configures a session at creation time.
type SessionOption func(*Session)

// WithWorkerBudget caps the number of boxes the session's evaluator
// fires concurrently within one client frame. Zero or negative leaves
// the evaluator default (GOMAXPROCS) in place — see DESIGN §13: the
// default is unbounded per frame, and a shared server hosting many
// sessions sets a budget so one client's deep program cannot starve
// the others' frames of CPU.
func WithWorkerBudget(n int) SessionOption {
	return func(s *Session) { s.workers = n }
}

// Session is one shared visualization: a dataflow program over the
// database, rendered independently by any number of attached clients.
// All clients see the same program output; each holds its own viewer,
// so pan, zoom, and elevation are per-client state.
//
// The session's evaluator reads tables through a snapSource pinned to
// one immutable db.Snap. Client frames render under the read half of
// mu; ApplyEvents advances the pinned snapshot under the write half.
// Database writers take neither lock — a writer is never blocked by a
// render in flight.
type Session struct {
	Name   string
	Canvas string

	db  *db.Database
	env *core.Environment
	src *snapSource

	boxID    int
	port     int
	defW     int
	defH     int
	workers  int // per-frame eval worker budget; <=0 means evaluator default
	defaults []viewer.ViewState

	// mu orders client frames (RLock, many at once) against snapshot
	// advances (Lock). It is never held while touching the database's
	// own lock, so the two locking domains cannot entangle.
	mu sync.RWMutex

	cmu     sync.Mutex
	clients map[*client]struct{}

	nextClient atomic.Int64
}

// NewSession builds a session by running build inside a detached
// environment (no synchronous Watch wiring — invalidation arrives via
// ApplyEvents) and pinning its evaluator to a snapshot of database.
func NewSession(name string, database *db.Database, build Builder, opts ...SessionOption) (*Session, error) {
	env := core.NewDetachedEnvironment(database)
	canvas, err := build(env)
	if err != nil {
		return nil, fmt.Errorf("server: building session %q: %w", name, err)
	}
	tmpl, err := env.Canvas(canvas)
	if err != nil {
		return nil, fmt.Errorf("server: session %q: %w", name, err)
	}
	bs, ok := tmpl.Source.(viewer.BoxSource)
	if !ok {
		return nil, fmt.Errorf("server: session %q: canvas %q: %w", name, canvas, ErrBadCanvas)
	}
	src := newSnapSource(database.Snapshot())
	env.Eval.SetTableSource(src)
	// The builder may have demanded against the live catalog; drop those
	// memos so every served frame is computed from the pinned snapshot.
	env.Eval.InvalidateAll()
	sess := &Session{
		Name:     name,
		Canvas:   canvas,
		db:       database,
		env:      env,
		src:      src,
		boxID:    bs.BoxID,
		port:     bs.Port,
		defW:     tmpl.W,
		defH:     tmpl.H,
		defaults: tmpl.States(),
		clients:  make(map[*client]struct{}),
	}
	for _, opt := range opts {
		opt(sess)
	}
	return sess, nil
}

// Generations returns the generation vector and database commit
// sequence of the currently pinned snapshot.
func (s *Session) Generations() (map[string]int64, uint64) {
	snap := s.src.current()
	return snap.Generations(), snap.Seq()
}

// Clients returns the number of attached clients.
func (s *Session) Clients() int {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return len(s.clients)
}

// ApplyEvents advances the session past a batch of database change
// events: re-snapshot, then for each changed table either enqueue its
// tuple deltas (when every event for the table carries one) so the
// evaluator patches memoized results incrementally, or touch its table
// boxes so the next demand re-fires the affected program suffix. The
// new generation vector is then pushed to every attached client so
// each re-renders its own viewport. Runs under the session write lock,
// so it never overlaps a client frame; it is called from the server's
// event pump, never from a writer's goroutine.
func (s *Session) ApplyEvents(ctx context.Context, evs []db.Event) {
	if len(evs) == 0 {
		return
	}
	_, sp := obs.StartSpanCtx(ctx, obs.SpanServerApply, "session", s.Name)
	defer sp.End()
	// Group per table in commit order. One structural event (create,
	// drop, load — no delta) poisons the table's whole batch: deltas
	// cannot be replayed across a wholesale replacement.
	type tableEvents struct {
		deltas []dataflow.TableDelta
		full   bool
	}
	order := make([]string, 0, len(evs))
	byTable := make(map[string]*tableEvents, len(evs))
	for _, ev := range evs {
		te, ok := byTable[ev.Table]
		if !ok {
			te = &tableEvents{}
			byTable[ev.Table] = te
			order = append(order, ev.Table)
		}
		if ev.Delta != nil && ev.Gen != 0 {
			te.deltas = append(te.deltas, dataflow.TableDelta{
				PrevGen: ev.PrevGen, Gen: ev.Gen, Ops: ev.Delta.Ops,
			})
		} else {
			te.full = true
		}
	}
	// Snapshot before taking s.mu: the session lock is documented as
	// never held while touching the database's own lock, and
	// ApplyEvents runs on the single pump goroutine, so the snapshot
	// taken here is still the newest one when the swap commits below.
	snap := s.db.Snapshot()
	s.mu.Lock()
	s.src.swap(snap)
	for _, t := range order {
		if te := byTable[t]; te.full {
			s.env.TouchTable(t)
		} else {
			s.env.Eval.EnqueueTableDelta(t, te.deltas)
		}
	}
	s.mu.Unlock()
	obs.Inc(obs.ServerBroadcasts)
	msg := GensMsg{Type: "gens", Gens: snap.Generations(), Snap: snap.Seq()}
	for _, c := range s.clientList() {
		c.invalidate(msg)
	}
}

// updateField runs the per-type update function for one field against
// the client's textual input — resolved against the snapshot version
// of the table the client was looking at — then installs the result
// through the optimistic UpdateTupleCAS path. A concurrent writer that
// advanced the table past the client's snapshot surfaces as
// db.ErrSnapshotStale rather than a silent clobber. Takes no session
// lock: the write path is the database's own, and the resulting event
// flows back through the pump like any other write.
func (s *Session) updateField(snap *db.Snap, table string, row int, col, input string) error {
	t, err := snap.Table(table)
	if err != nil {
		return err
	}
	if row < 0 || row >= t.Len() {
		return fmt.Errorf("server: update %s: row %d out of range", table, row)
	}
	ci := t.Schema().Index(col)
	if ci < 0 {
		return fmt.Errorf("server: update %s: no stored column %q", table, col)
	}
	kind := t.Schema().Col(ci).Kind
	current := t.Tuple(row)[ci]
	if current.IsNull() {
		current = types.Zero(kind)
	}
	nv, err := s.db.Updates().ForKind(kind)(current, input)
	if err != nil {
		return fmt.Errorf("server: update %s.%s: %w", table, col, err)
	}
	return s.db.UpdateTupleCAS(snap, table, row, col, nv)
}

// attach creates a client with its own viewer seeded from the session's
// view defaults. ctx is the client's connection context: demands issued
// by this client's frames abort when it disconnects.
func (s *Session) attach(ctx context.Context, ws *WSConn, w, h int) *client {
	if w <= 0 {
		w = s.defW
	}
	if h <= 0 {
		h = s.defH
	}
	id := fmt.Sprintf("c%d", s.nextClient.Add(1))
	var evalOpts []dataflow.EvalOption
	if s.workers > 0 {
		evalOpts = append(evalOpts, dataflow.WithWorkers(s.workers))
	}
	v := viewer.New(s.Canvas+"/"+id,
		viewer.BoxSource{Eval: s.env.Eval, BoxID: s.boxID, Port: s.port, Ctx: ctx, Options: evalOpts}, w, h)
	v.SetStates(s.defaults)
	c := &client{
		id:      id,
		session: s,
		ws:      ws,
		viewer:  v,
		dirty:   make(chan GensMsg, 1),
	}
	s.cmu.Lock()
	s.clients[c] = struct{}{}
	s.cmu.Unlock()
	obs.Inc(obs.ServerClients)
	return c
}

// detach removes a client; its viewer state dies with it.
func (s *Session) detach(c *client) {
	s.cmu.Lock()
	delete(s.clients, c)
	s.cmu.Unlock()
	obs.Inc(obs.ServerDetaches)
}

func (s *Session) clientList() []*client {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	out := make([]*client, 0, len(s.clients))
	for c := range s.clients {
		out = append(out, c)
	}
	return out
}
