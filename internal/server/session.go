package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/viewer"
)

// Builder constructs a session's dataflow program inside a fresh
// environment and returns the name of the canvas to serve.
// core.Figure7 is the stock demo builder.
type Builder func(env *core.Environment) (string, error)

// Session is one shared visualization: a dataflow program over the
// database, rendered independently by any number of attached clients.
// All clients see the same program output; each holds its own viewer,
// so pan, zoom, and elevation are per-client state.
//
// The session's evaluator reads tables through a snapSource pinned to
// one immutable db.Snap. Client frames render under the read half of
// mu; ApplyEvents advances the pinned snapshot under the write half.
// Database writers take neither lock — a writer is never blocked by a
// render in flight.
type Session struct {
	Name   string
	Canvas string

	db  *db.Database
	env *core.Environment
	src *snapSource

	boxID    int
	port     int
	defW     int
	defH     int
	defaults []viewer.ViewState

	// mu orders client frames (RLock, many at once) against snapshot
	// advances (Lock). It is never held while touching the database's
	// own lock, so the two locking domains cannot entangle.
	mu sync.RWMutex

	cmu     sync.Mutex
	clients map[*client]struct{}

	nextClient atomic.Int64
}

// NewSession builds a session by running build inside a detached
// environment (no synchronous Watch wiring — invalidation arrives via
// ApplyEvents) and pinning its evaluator to a snapshot of database.
func NewSession(name string, database *db.Database, build Builder) (*Session, error) {
	env := core.NewDetachedEnvironment(database)
	canvas, err := build(env)
	if err != nil {
		return nil, fmt.Errorf("server: building session %q: %w", name, err)
	}
	tmpl, err := env.Canvas(canvas)
	if err != nil {
		return nil, fmt.Errorf("server: session %q: %w", name, err)
	}
	bs, ok := tmpl.Source.(viewer.BoxSource)
	if !ok {
		return nil, fmt.Errorf("server: session %q: canvas %q is not fed by a program box", name, canvas)
	}
	src := newSnapSource(database.Snapshot())
	env.Eval.SetTableSource(src)
	// The builder may have demanded against the live catalog; drop those
	// memos so every served frame is computed from the pinned snapshot.
	env.Eval.InvalidateAll()
	return &Session{
		Name:     name,
		Canvas:   canvas,
		db:       database,
		env:      env,
		src:      src,
		boxID:    bs.BoxID,
		port:     bs.Port,
		defW:     tmpl.W,
		defH:     tmpl.H,
		defaults: tmpl.States(),
		clients:  make(map[*client]struct{}),
	}, nil
}

// Generations returns the generation vector and database commit
// sequence of the currently pinned snapshot.
func (s *Session) Generations() (map[string]int64, uint64) {
	snap := s.src.current()
	return snap.Generations(), snap.Seq()
}

// Clients returns the number of attached clients.
func (s *Session) Clients() int {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return len(s.clients)
}

// ApplyEvents advances the session past a batch of database change
// events: re-snapshot, touch every table box reading a changed table,
// then push the new generation vector to every attached client so each
// re-renders its own viewport. Runs under the session write lock, so
// it never overlaps a client frame; it is called from the server's
// event pump, never from a writer's goroutine.
func (s *Session) ApplyEvents(ctx context.Context, evs []db.Event) {
	if len(evs) == 0 {
		return
	}
	_, sp := obs.StartSpanCtx(ctx, obs.SpanServerApply, "session", s.Name)
	defer sp.End()
	tables := make(map[string]struct{}, len(evs))
	for _, ev := range evs {
		tables[ev.Table] = struct{}{}
	}
	s.mu.Lock()
	snap := s.db.Snapshot()
	s.src.swap(snap)
	for t := range tables {
		s.env.TouchTable(t)
	}
	s.mu.Unlock()
	obs.Inc(obs.ServerBroadcasts)
	msg := GensMsg{Type: "gens", Gens: snap.Generations(), Snap: snap.Seq()}
	for _, c := range s.clientList() {
		c.invalidate(msg)
	}
}

// attach creates a client with its own viewer seeded from the session's
// view defaults. ctx is the client's connection context: demands issued
// by this client's frames abort when it disconnects.
func (s *Session) attach(ctx context.Context, ws *WSConn, w, h int) *client {
	if w <= 0 {
		w = s.defW
	}
	if h <= 0 {
		h = s.defH
	}
	id := fmt.Sprintf("c%d", s.nextClient.Add(1))
	v := viewer.New(s.Canvas+"/"+id,
		viewer.BoxSource{Eval: s.env.Eval, BoxID: s.boxID, Port: s.port, Ctx: ctx}, w, h)
	v.SetStates(s.defaults)
	c := &client{
		id:      id,
		session: s,
		ws:      ws,
		viewer:  v,
		dirty:   make(chan GensMsg, 1),
	}
	s.cmu.Lock()
	s.clients[c] = struct{}{}
	s.cmu.Unlock()
	obs.Inc(obs.ServerClients)
	return c
}

// detach removes a client; its viewer state dies with it.
func (s *Session) detach(c *client) {
	s.cmu.Lock()
	delete(s.clients, c)
	s.cmu.Unlock()
	obs.Inc(obs.ServerDetaches)
}

func (s *Session) clientList() []*client {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	out := make([]*client, 0, len(s.clients))
	for c := range s.clients {
		out = append(out, c)
	}
	return out
}
