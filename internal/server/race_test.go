package server

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

// frameKey identifies render inputs: generation vector, viewport, and
// framebuffer size. Two frames with equal keys must be byte-identical,
// regardless of which client rendered them or what the writer was
// doing at the time.
func frameKey(m FrameMeta) string {
	names := make([]string, 0, len(m.Gens))
	for n := range m.Gens {
		names = append(names, n)
	}
	sort.Strings(names)
	var b bytes.Buffer
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d;", n, m.Gens[n])
	}
	fmt.Fprintf(&b, "vp=%v/%v/%v;%dx%d", m.Viewport.CX, m.Viewport.CY, m.Viewport.Elev, m.W, m.H)
	return b.String()
}

// TestEightClientsByteIdenticalFrames is the acceptance test of the
// push server: eight concurrent WebSocket clients walk the same
// viewport script on one shared session while a writer mutates the
// Stations table mid-render. Every pair of frames rendered against the
// same (gens, viewport, size) key must be byte-identical, the writer
// must finish while renders are in flight, and after quiescing all
// eight clients must hold the same final frame. Run with -race.
func TestEightClientsByteIdenticalFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-client render test skipped in -short")
	}
	srv, database, addr := newTestServer(t, 10, 6, 7)

	const nClients = 8
	clients := make([]*testClient, nClients)
	for i := range clients {
		clients[i] = attachClient(t, addr, 256, 192)
	}

	// The shared viewport script every client walks.
	script := []ClientOp{
		{Op: "view", X: -91.5, Y: 31.0, Elev: 2.2},
		{Op: "view", X: -91.0, Y: 30.5, Elev: 1.5},
		{Op: "zoom", Factor: 2},
		{Op: "view", X: -92.0, Y: 31.5, Elev: 2.0},
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < 40; i++ {
			if err := database.UpdateTuple("Stations", i%10, "altitude",
				types.NewFloat(float64(100+i))); err != nil {
				t.Errorf("writer blocked or failed: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *testClient) {
			defer wg.Done()
			for k, op := range script {
				op.Token = fmt.Sprintf("c%d-s%d", ci, k)
				c.send(op)
				c.waitFrameToken(op.Token, 30*time.Second)
			}
		}(ci, c)
	}
	wg.Wait()
	<-writerDone
	if t.Failed() {
		t.FailNow()
	}

	// Quiesce: wait until the session has applied every committed write.
	want := database.Snapshot().Seq()
	sess, _ := srv.Session("weather")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, seq := sess.Generations(); seq >= want {
			break
		}
		if time.Now().After(deadline) {
			_, seq := sess.Generations()
			t.Fatalf("session stuck at snap %d, want %d", seq, want)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Final frame: same viewport everywhere, database quiet — all eight
	// must agree byte for byte on the fully-applied snapshot.
	for ci, c := range clients {
		c.send(ClientOp{Op: "view", X: -91.5, Y: 31.0, Elev: 2.2, Token: fmt.Sprintf("final-%d", ci)})
	}
	finals := make([]*recvFrame, nClients)
	for ci, c := range clients {
		finals[ci] = c.waitFrameToken(fmt.Sprintf("final-%d", ci), 30*time.Second)
		if finals[ci].meta.Snap != want {
			t.Fatalf("client %d final frame on snap %d, want %d", ci, finals[ci].meta.Snap, want)
		}
	}
	for ci := 1; ci < nClients; ci++ {
		if frameKey(finals[ci].meta) != frameKey(finals[0].meta) {
			t.Fatalf("final frame keys diverge:\n c0: %s\n c%d: %s",
				frameKey(finals[0].meta), ci, frameKey(finals[ci].meta))
		}
		if !bytes.Equal(finals[ci].png, finals[0].png) {
			t.Fatalf("client %d final frame differs from client 0 (%d vs %d bytes)",
				ci, len(finals[ci].png), len(finals[0].png))
		}
	}

	// Cross-client identity over the whole run: group every received
	// frame by render-input key; within a group all PNGs must match.
	type sample struct {
		client int
		png    []byte
	}
	groups := make(map[string][]sample)
	total := 0
	for ci, c := range clients {
		for _, f := range c.frames {
			groups[frameKey(f.meta)] = append(groups[frameKey(f.meta)], sample{ci, f.png})
			total++
		}
	}
	crossClient := 0
	for key, g := range groups {
		for i := 1; i < len(g); i++ {
			if !bytes.Equal(g[i].png, g[0].png) {
				t.Fatalf("frames with identical key %q differ (clients %d vs %d)",
					key, g[0].client, g[i].client)
			}
			if g[i].client != g[0].client {
				crossClient++
			}
		}
	}
	if crossClient == 0 {
		t.Fatal("no cross-client frame groups — test exercised nothing")
	}
	t.Logf("%d frames, %d groups, %d cross-client identical pairs", total, len(groups), crossClient)
}

// TestWriterThroughputDuringRenders pins the "writer never blocked"
// claim at the server layer: while four clients continuously re-render,
// 200 sequential writes must all land; the db layer guarantees each
// write only contends on the catalog mutex, never on a render.
func TestWriterThroughputDuringRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	_, database, addr := newTestServer(t, 10, 6, 3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		c := attachClient(t, addr, 200, 150)
		wg.Add(1)
		go func(ci int, c *testClient) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				tok := fmt.Sprintf("r%d-%d", ci, k)
				c.send(ClientOp{Op: "render", Token: tok})
				c.waitFrameToken(tok, 30*time.Second)
			}
		}(i, c)
	}
	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := database.UpdateTuple("Stations", i%10, "altitude",
			types.NewFloat(float64(i))); err != nil {
			t.Fatalf("write %d failed: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	t.Logf("200 writes in %v under 4 rendering clients", elapsed)
}
