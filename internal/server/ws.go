// Package server hosts shared visualization sessions over HTTP and
// WebSocket: many clients attach viewers to the same Extended
// relations, pan and zoom independently, and receive pushed frames
// when database writes invalidate what they are looking at. Reads run
// against immutable db.Snap catalog views, so a render in flight never
// blocks a writer and every frame is keyed by one consistent
// generation vector (DESIGN.md §13).
package server

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// wsGUID is the fixed handshake GUID of RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket frame opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// maxWSPayload bounds a single message; canvas frames are far smaller.
const maxWSPayload = 1 << 26

// WSConn is one WebSocket connection, either side. Reads must come
// from a single goroutine; writes are internally serialized, so any
// goroutine may send.
type WSConn struct {
	c      net.Conn
	br     *bufio.Reader
	client bool // client side masks outgoing frames

	wmu    sync.Mutex
	closed bool
}

// Upgrade performs the server half of the WebSocket handshake,
// hijacking the HTTP connection.
func Upgrade(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if !headerHasToken(r.Header, "Connection", "upgrade") || !headerHasToken(r.Header, "Upgrade", "websocket") {
		http.Error(w, "websocket upgrade required", http.StatusBadRequest)
		return nil, fmt.Errorf("server: not a websocket upgrade request: %w", ErrBadHandshake)
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		http.Error(w, "unsupported websocket version", http.StatusBadRequest)
		return nil, fmt.Errorf("server: unsupported websocket version %q: %w", r.Header.Get("Sec-WebSocket-Version"), ErrBadHandshake)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, fmt.Errorf("server: missing Sec-WebSocket-Key: %w", ErrBadHandshake)
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijacking unsupported", http.StatusInternalServerError)
		return nil, fmt.Errorf("server: response writer cannot hijack: %w", ErrBadHandshake)
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("server: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &WSConn{c: conn, br: rw.Reader}, nil
}

// Dial opens a client WebSocket connection to a ws:// URL. It exists
// for tests and the load bench; it implements just enough of RFC 6455
// to talk to Upgrade (and to any compliant server).
func Dial(rawURL string) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("server: dial: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("server: dial: unsupported scheme %q: %w", u.Scheme, ErrBadHandshake)
	}
	host := u.Host
	if u.Port() == "" {
		host += ":80"
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("server: dial: %w", err)
	}
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: dial: reading status: %w", err)
	}
	if !strings.Contains(status, "101") {
		conn.Close()
		return nil, fmt.Errorf("server: dial: handshake refused (%s): %w", strings.TrimSpace(status), ErrBadHandshake)
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(v)
		}
	}
	if accept != acceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("server: dial: bad Sec-WebSocket-Accept: %w", ErrBadHandshake)
	}
	return &WSConn{c: conn, br: br, client: true}, nil
}

// acceptKey computes Sec-WebSocket-Accept for a handshake key.
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerHasToken reports whether a comma-separated header contains a
// token, case-insensitively.
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// ReadMessage returns the next complete text or binary message,
// transparently answering pings and consuming pongs. It returns
// io.EOF after a clean close handshake.
func (ws *WSConn) ReadMessage() (op byte, payload []byte, err error) {
	var (
		msgOp  byte
		buffer []byte
	)
	for {
		fin, frameOp, data, err := ws.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch frameOp {
		case opPing:
			if err := ws.writeFrame(opPong, data); err != nil {
				return 0, nil, err
			}
			continue
		case opPong:
			continue
		case opClose:
			_ = ws.writeFrame(opClose, data) // echo; ignore error, peer may be gone
			return 0, nil, io.EOF
		case opContinuation:
			if msgOp == 0 {
				return 0, nil, fmt.Errorf("server: continuation frame without a message: %w", ErrProtocol)
			}
		case OpText, OpBinary:
			if msgOp != 0 {
				return 0, nil, fmt.Errorf("server: interleaved message frames: %w", ErrProtocol)
			}
			msgOp = frameOp
		default:
			return 0, nil, fmt.Errorf("server: unsupported opcode %#x: %w", frameOp, ErrProtocol)
		}
		buffer = append(buffer, data...)
		if len(buffer) > maxWSPayload {
			return 0, nil, fmt.Errorf("server: message exceeds %d bytes: %w", maxWSPayload, ErrProtocol)
		}
		if fin {
			return msgOp, buffer, nil
		}
	}
}

// readFrame reads one frame, unmasking if needed.
func (ws *WSConn) readFrame() (fin bool, op byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(ws.br, hdr[:]); err != nil {
		return false, 0, nil, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return false, 0, nil, fmt.Errorf("server: nonzero reserved bits")
	}
	op = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(ws.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(ws.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxWSPayload {
		return false, 0, nil, fmt.Errorf("server: frame exceeds %d bytes", maxWSPayload)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(ws.br, mask[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(ws.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return fin, op, payload, nil
}

// WriteMessage sends one unfragmented message. Safe for concurrent
// use.
func (ws *WSConn) WriteMessage(op byte, payload []byte) error {
	ws.wmu.Lock()
	defer ws.wmu.Unlock()
	return ws.writeFrameLocked(op, payload)
}

// WritePair sends two messages back to back with no interleaving —
// the frame-meta/frame-bytes pair of the push protocol.
func (ws *WSConn) WritePair(op1 byte, p1 []byte, op2 byte, p2 []byte) error {
	ws.wmu.Lock()
	defer ws.wmu.Unlock()
	if err := ws.writeFrameLocked(op1, p1); err != nil {
		return err
	}
	return ws.writeFrameLocked(op2, p2)
}

func (ws *WSConn) writeFrame(op byte, payload []byte) error {
	ws.wmu.Lock()
	defer ws.wmu.Unlock()
	return ws.writeFrameLocked(op, payload)
}

func (ws *WSConn) writeFrameLocked(op byte, payload []byte) error {
	if ws.closed {
		return fmt.Errorf("server: write on closed websocket")
	}
	hdr := make([]byte, 0, 14)
	hdr = append(hdr, 0x80|op)
	maskBit := byte(0)
	if ws.client {
		maskBit = 0x80
	}
	switch {
	case len(payload) < 126:
		hdr = append(hdr, maskBit|byte(len(payload)))
	case len(payload) <= 0xFFFF:
		hdr = append(hdr, maskBit|126, byte(len(payload)>>8), byte(len(payload)))
	default:
		hdr = append(hdr, maskBit|127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(len(payload)))
		hdr = append(hdr, ext[:]...)
	}
	if ws.client {
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		hdr = append(hdr, mask[:]...)
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i%4]
		}
		payload = masked
	}
	if _, err := ws.c.Write(hdr); err != nil {
		return err
	}
	_, err := ws.c.Write(payload)
	return err
}

// Close sends a close frame (best effort) and closes the connection.
func (ws *WSConn) Close() error {
	ws.wmu.Lock()
	if !ws.closed {
		_ = ws.writeFrameLocked(opClose, nil)
		ws.closed = true
	}
	ws.wmu.Unlock()
	return ws.c.Close()
}
