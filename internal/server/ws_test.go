package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// echoServer upgrades and echoes every message back with opcode intact.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer ws.Close()
		for {
			op, payload, err := ws.ReadMessage()
			if err != nil {
				return
			}
			if err := ws.WriteMessage(op, payload); err != nil {
				return
			}
		}
	}))
}

func wsURL(srv *httptest.Server) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http")
}

func TestWSEchoRoundTrip(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	ws, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	// Small (7-bit length), medium (16-bit), and large (64-bit) payloads
	// exercise all three header encodings, masked both ways.
	sizes := []int{0, 1, 125, 126, 4096, 65535, 65536, 1 << 17}
	for _, n := range sizes {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i * 31)
		}
		if err := ws.WriteMessage(OpBinary, msg); err != nil {
			t.Fatalf("write %d: %v", n, err)
		}
		op, got, err := ws.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", n, err)
		}
		if op != OpBinary || !bytes.Equal(got, msg) {
			t.Fatalf("echo %d bytes: op=%d len=%d", n, op, len(got))
		}
	}
	if err := ws.WriteMessage(OpText, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	op, got, err := ws.ReadMessage()
	if err != nil || op != OpText || string(got) != "hello" {
		t.Fatalf("text echo: op=%d got=%q err=%v", op, got, err)
	}
}

func TestWSPingHandledTransparently(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	ws, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	// The server's read loop must answer the ping itself; the next real
	// message still round-trips.
	if err := ws.WriteMessage(opPing, []byte("are you there")); err != nil {
		t.Fatal(err)
	}
	if err := ws.WriteMessage(OpText, []byte("after ping")); err != nil {
		t.Fatal(err)
	}
	op, got, err := ws.ReadMessage()
	if err != nil || op != OpText || string(got) != "after ping" {
		t.Fatalf("after ping: op=%d got=%q err=%v", op, got, err)
	}
}

func TestWSCloseHandshake(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	ws, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ws.ReadMessage(); err == nil {
		t.Fatal("read after close should fail")
	}
}

func TestWSWritePairStaysAdjacent(t *testing.T) {
	// A server goroutine hammers standalone messages while the main
	// goroutine sends meta/payload pairs; every pair must arrive with
	// its halves adjacent.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer ws.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 200; i++ {
				if ws.WriteMessage(OpText, []byte("noise")) != nil {
					return
				}
			}
		}()
		for i := 0; i < 50; i++ {
			if ws.WritePair(OpText, []byte("meta"), OpBinary, []byte("payload")) != nil {
				break
			}
		}
		<-done
		ws.WriteMessage(OpText, []byte("done"))
		// Hold the connection until the client has read everything.
		ws.ReadMessage()
	}))
	defer srv.Close()
	ws, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	pairs := 0
	for {
		op, payload, err := ws.ReadMessage()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if op == OpText && string(payload) == "done" {
			break
		}
		if op == OpText && string(payload) == "meta" {
			op2, p2, err := ws.ReadMessage()
			if err != nil {
				t.Fatal(err)
			}
			if op2 != OpBinary || string(p2) != "payload" {
				t.Fatalf("pair split: next message op=%d %q", op2, p2)
			}
			pairs++
		}
	}
	if pairs != 50 {
		t.Fatalf("got %d intact pairs, want 50", pairs)
	}
}

func TestUpgradeRejectsPlainGET(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("Upgrade accepted a plain GET")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestAcceptKey(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("acceptKey = %q, want %q", got, want)
	}
}
