package server

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// waitFor polls the client's message stream until cond holds.
func (c *testClient) waitFor(timeout time.Duration, what string, cond func() bool) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		if !c.readOne(time.Until(deadline)) {
			break
		}
	}
	c.t.Fatalf("timed out waiting for %s (frames=%d gens=%d acks=%d errs=%v)",
		what, len(c.frames), len(c.gens), len(c.acks), c.errs)
}

// An "update" op edits one field through the per-type update function
// and the optimistic CAS path: the client gets an ack, every client gets
// a fresh frame against the advanced snapshot, and the value sticks.
func TestUpdateOpCommitsAndPushes(t *testing.T) {
	_, database, addr := newTestServer(t, 8, 6, 1)
	c := attachClient(t, addr, 200, 150)
	before := c.hello.Gens["Stations"]

	c.send(ClientOp{Op: "update", Table: "Stations", Row: 0, Col: "altitude", Input: "432.5", Token: "u1"})
	c.waitFor(10*time.Second, "ack", func() bool { return len(c.acks) > 0 })
	if a := c.acks[0]; a.Op != "update" || a.Token != "u1" {
		t.Fatalf("ack = %+v", a)
	}
	c.waitFor(10*time.Second, "pushed frame", func() bool {
		n := len(c.frames)
		return n > 0 && c.frames[n-1].meta.Gens["Stations"] > before
	})
	if len(c.errs) > 0 {
		t.Fatalf("unexpected errors: %v", c.errs)
	}
	st, err := database.Table("Stations")
	if err != nil {
		t.Fatal(err)
	}
	ai := st.Schema().Index("altitude")
	if got := st.Tuple(0)[ai]; !got.Equal(types.NewFloat(432.5)) {
		t.Fatalf("altitude = %v, want 432.5", got)
	}
}

// An update losing its race with a concurrent writer surfaces over the
// wire as an ErrorMsg with Code "stale" — never a silent clobber. The
// race is made deterministic by holding the session write lock, which
// stalls the pump's snapshot advance while the direct write commits.
func TestUpdateOpStaleCodeOnWire(t *testing.T) {
	srv, database, addr := newTestServer(t, 8, 6, 1)
	c := attachClient(t, addr, 200, 150)
	sess, _ := srv.Session("weather")

	sess.mu.Lock()
	if err := database.UpdateTuple("Stations", 0, "altitude", types.NewFloat(1)); err != nil {
		sess.mu.Unlock()
		t.Fatal(err)
	}
	// The pinned snapshot cannot advance (ApplyEvents blocks on mu), so
	// this update validates against a stale generation and must lose.
	c.send(ClientOp{Op: "update", Table: "Stations", Row: 0, Col: "altitude", Input: "2", Token: "s1"})
	c.waitFor(10*time.Second, "stale error", func() bool { return len(c.errMsgs) > 0 })
	sess.mu.Unlock()

	e := c.errMsgs[0]
	if e.Code != ErrorCodeStale || !strings.Contains(e.Error, "stale") {
		t.Fatalf("stale rejection = %+v, want code %q", e, ErrorCodeStale)
	}
	// The direct write won; the rejected input never landed.
	st, err := database.Table("Stations")
	if err != nil {
		t.Fatal(err)
	}
	ai := st.Schema().Index("altitude")
	if got := st.Tuple(0)[ai]; !got.Equal(types.NewFloat(1)) {
		t.Fatalf("altitude = %v, want the direct writer's 1", got)
	}
}

// Non-concurrency update failures report a plain error with no code.
func TestUpdateOpBadColumnNoCode(t *testing.T) {
	_, _, addr := newTestServer(t, 8, 6, 1)
	c := attachClient(t, addr, 200, 150)
	c.send(ClientOp{Op: "update", Table: "Stations", Row: 0, Col: "nope", Input: "1"})
	c.waitFor(10*time.Second, "error", func() bool { return len(c.errMsgs) > 0 })
	if c.errMsgs[0].Code != "" {
		t.Fatalf("bad-column error carries code %q", c.errMsgs[0].Code)
	}
}

// WithWorkerBudget threads a worker cap into every client frame's eval
// options; the session still renders correctly.
func TestSessionWorkerBudget(t *testing.T) {
	database, err := core.SeedDatabase(8, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(database)
	t.Cleanup(func() { srv.Close() })
	sess, err := srv.AddSession("weather", core.Figure7, WithWorkerBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if sess.workers != 1 {
		t.Fatalf("workers = %d, want 1", sess.workers)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := attachClient(t, addr, 160, 120)
	c.send(ClientOp{Op: "render", Token: "t1"})
	f := c.waitFrameToken("t1", 10*time.Second)
	if len(f.png) == 0 {
		t.Fatal("empty frame under worker budget")
	}
}

// Tuple writes now flow to sessions as deltas: after a burst of appends,
// the pushed frame reflects the final state, and a structural event
// (drop) still invalidates wholesale.
func TestApplyEventsDeltaRouting(t *testing.T) {
	_, database, addr := newTestServer(t, 8, 6, 1)
	c := attachClient(t, addr, 200, 150)
	before := c.hello.Gens["Stations"]

	st, err := database.Table("Stations")
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]types.Value, len(st.Tuple(0)))
	copy(tup, st.Tuple(0))
	for i := 0; i < 10; i++ {
		if err := database.AppendTuple("Stations", tup); err != nil {
			t.Fatal(err)
		}
	}
	var finalGen int64
	c.waitFor(15*time.Second, "post-append frame", func() bool {
		n := len(c.frames)
		if n == 0 {
			return false
		}
		finalGen = c.frames[n-1].meta.Gens["Stations"]
		cur, err := database.Table("Stations")
		return err == nil && finalGen > before && finalGen == cur.Generation()
	})
	if len(c.errs) > 0 {
		t.Fatalf("errors during delta routing: %v", c.errs)
	}
}
