package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/types"
)

// newTestServer seeds a database, builds one "weather" Figure 7
// session, and serves it on a free port.
func newTestServer(t *testing.T, stations, perStation int, seed int64) (*Server, *db.Database, string) {
	t.Helper()
	database, err := core.SeedDatabase(stations, perStation, seed)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(database)
	if _, err := srv.AddSession("weather", core.Figure7); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, database, addr
}

// recvFrame is one frame as received: meta plus the PNG that followed.
type recvFrame struct {
	meta FrameMeta
	png  []byte
}

// testClient drives one WebSocket connection from the test goroutine.
type testClient struct {
	t       *testing.T
	ws      *WSConn
	hello   Hello
	frames  []recvFrame
	gens    []GensMsg
	errs    []string
	errMsgs []ErrorMsg
	acks    []AckMsg
}

func attachClient(t *testing.T, addr string, w, h int) *testClient {
	t.Helper()
	url := fmt.Sprintf("ws://%s/ws?session=weather&w=%d&h=%d", addr, w, h)
	ws, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	c := &testClient{t: t, ws: ws}
	op, payload, err := c.readRaw(5 * time.Second)
	if err != nil || op != OpText {
		t.Fatalf("reading hello: op=%d err=%v", op, err)
	}
	if err := json.Unmarshal(payload, &c.hello); err != nil || c.hello.Type != "hello" {
		t.Fatalf("bad hello %q: %v", payload, err)
	}
	return c
}

func (c *testClient) readRaw(timeout time.Duration) (byte, []byte, error) {
	_ = c.ws.c.SetReadDeadline(time.Now().Add(timeout))
	defer c.ws.c.SetReadDeadline(time.Time{})
	return c.ws.ReadMessage()
}

// readOne consumes one server message, stashing frames, gens, and
// errors. Returns false on EOF/timeout.
func (c *testClient) readOne(timeout time.Duration) bool {
	op, payload, err := c.readRaw(timeout)
	if err != nil {
		return false
	}
	if op != OpText {
		c.t.Errorf("unexpected binary message outside a frame pair")
		return true
	}
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(payload, &probe); err != nil {
		c.t.Errorf("bad server message %q: %v", payload, err)
		return true
	}
	switch probe.Type {
	case "frame":
		var meta FrameMeta
		if err := json.Unmarshal(payload, &meta); err != nil {
			c.t.Errorf("bad frame meta: %v", err)
			return true
		}
		op2, png, err := c.readRaw(timeout)
		if err != nil || op2 != OpBinary {
			c.t.Errorf("frame meta not followed by binary PNG: op=%d err=%v", op2, err)
			return false
		}
		if len(png) != meta.PNGBytes {
			c.t.Errorf("frame advertises %d bytes, got %d", meta.PNGBytes, len(png))
		}
		c.frames = append(c.frames, recvFrame{meta: meta, png: png})
	case "gens":
		var g GensMsg
		if err := json.Unmarshal(payload, &g); err == nil {
			c.gens = append(c.gens, g)
		}
	case "error":
		var e ErrorMsg
		if err := json.Unmarshal(payload, &e); err == nil {
			c.errs = append(c.errs, e.Error)
			c.errMsgs = append(c.errMsgs, e)
		}
	case "ack":
		var a AckMsg
		if err := json.Unmarshal(payload, &a); err == nil {
			c.acks = append(c.acks, a)
		}
	default:
		c.t.Errorf("unknown server message type %q", probe.Type)
	}
	return true
}

func (c *testClient) send(op ClientOp) {
	c.t.Helper()
	b, err := json.Marshal(op)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := c.ws.WriteMessage(OpText, b); err != nil {
		c.t.Fatalf("send %s: %v", op.Op, err)
	}
}

// waitFrameToken reads until the frame echoing token arrives.
func (c *testClient) waitFrameToken(token string, timeout time.Duration) *recvFrame {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i := range c.frames {
			if c.frames[i].meta.Token == token {
				return &c.frames[i]
			}
		}
		if !c.readOne(time.Until(deadline)) {
			break
		}
	}
	c.t.Fatalf("no frame with token %q within %v (frames=%d errs=%v)",
		token, timeout, len(c.frames), c.errs)
	return nil
}

func TestHTTPEndpoints(t *testing.T) {
	_, _, addr := newTestServer(t, 8, 6, 1)
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, body := get("/sessions")
	if code != 200 || !strings.Contains(body, `"weather"`) {
		t.Fatalf("/sessions: %d %q", code, body)
	}
	if !strings.Contains(body, `"Stations"`) {
		t.Fatalf("/sessions missing generation vector: %q", body)
	}
	if code, _ := get("/telemetry/snapshot"); code != 200 {
		t.Fatalf("/telemetry/snapshot: %d", code)
	}
}

func TestHelloAndTokenedRender(t *testing.T) {
	_, _, addr := newTestServer(t, 8, 6, 1)
	c := attachClient(t, addr, 320, 240)
	if c.hello.Session != "weather" || c.hello.W != 320 || c.hello.H != 240 {
		t.Fatalf("hello = %+v", c.hello)
	}
	if c.hello.Gens["Stations"] == 0 || c.hello.Gens["LouisianaMap"] == 0 {
		t.Fatalf("hello generations missing tables: %v", c.hello.Gens)
	}
	c.send(ClientOp{Op: "render", Token: "t1"})
	f := c.waitFrameToken("t1", 10*time.Second)
	if f.meta.W != 320 || f.meta.H != 240 || len(f.png) == 0 {
		t.Fatalf("frame meta = %+v, png %d bytes", f.meta, len(f.png))
	}
	if f.meta.Gens["Stations"] != c.hello.Gens["Stations"] {
		t.Fatalf("frame gens %v != hello gens %v", f.meta.Gens, c.hello.Gens)
	}
	// Pan moves the viewport reported in the meta.
	c.send(ClientOp{Op: "view", X: -91, Y: 30.5, Elev: 1.5, Token: "t2"})
	f2 := c.waitFrameToken("t2", 10*time.Second)
	if f2.meta.Viewport.CX != -91 || f2.meta.Viewport.CY != 30.5 || f2.meta.Viewport.Elev != 1.5 {
		t.Fatalf("viewport = %+v", f2.meta.Viewport)
	}
}

func TestWriteTriggersPush(t *testing.T) {
	_, database, addr := newTestServer(t, 8, 6, 1)
	c := attachClient(t, addr, 320, 240)
	c.send(ClientOp{Op: "render", Token: "t1"})
	c.waitFrameToken("t1", 10*time.Second)
	before := c.hello.Gens["Stations"]

	if err := database.UpdateTuple("Stations", 0, "altitude", types.NewFloat(999)); err != nil {
		t.Fatal(err)
	}

	// The push arrives unprompted: a gens message, then a fresh frame
	// rendered against the advanced snapshot.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n := len(c.frames); n > 0 && c.frames[n-1].meta.Gens["Stations"] > before {
			if len(c.gens) == 0 {
				t.Fatal("frame pushed without a gens announcement")
			}
			return
		}
		if !c.readOne(time.Until(deadline)) {
			break
		}
	}
	t.Fatalf("no pushed frame after write: frames=%d gens=%d", len(c.frames), len(c.gens))
}

func TestUnknownOpReportsError(t *testing.T) {
	_, _, addr := newTestServer(t, 8, 6, 1)
	c := attachClient(t, addr, 320, 240)
	c.send(ClientOp{Op: "explode"})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.errs) > 0 {
			if !strings.Contains(c.errs[0], "unknown op") {
				t.Fatalf("error = %q", c.errs[0])
			}
			return
		}
		if !c.readOne(time.Until(deadline)) {
			break
		}
	}
	t.Fatal("no error message for unknown op")
}

func TestAttachUnknownSessionRefused(t *testing.T) {
	_, _, addr := newTestServer(t, 8, 6, 1)
	if _, err := Dial("ws://" + addr + "/ws?session=nope"); err == nil {
		t.Fatal("dial to unknown session succeeded")
	}
}
