package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/db"
	"repro/internal/obs/export"
)

// Server hosts shared sessions over one database and serves them to
// WebSocket clients, alongside the telemetry endpoints of obs/export.
type Server struct {
	db *db.Database

	mu       sync.Mutex
	sessions map[string]*Session

	ctx    context.Context
	cancel context.CancelFunc

	pumpCancel func()
	pumpDone   chan struct{}

	hsrv *http.Server
	ln   net.Listener
}

// New creates a server over database and starts its event pump: one
// goroutine draining db.Subscribe and applying batches to every
// session. Call Close to stop it.
func New(database *db.Database) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:       database,
		sessions: make(map[string]*Session),
		ctx:      ctx,
		cancel:   cancel,
	}
	s.startPump()
	return s
}

// AddSession builds and registers a session under name.
func (s *Server) AddSession(name string, build Builder, opts ...SessionOption) (*Session, error) {
	sess, err := NewSession(name, s.db, build, opts...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[name]; ok {
		return nil, fmt.Errorf("server: session %q: %w", name, ErrSessionExists)
	}
	s.sessions[name] = sess
	return sess, nil
}

// Session looks up a session by name; an empty name resolves to the
// only session when exactly one exists.
func (s *Server) Session(name string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" && len(s.sessions) == 1 {
		for _, sess := range s.sessions {
			return sess, true
		}
	}
	sess, ok := s.sessions[name]
	return sess, ok
}

// SessionNames returns the registered session names, sorted.
func (s *Server) SessionNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Server) sessionList() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// Handler returns the server's HTTP mux:
//
//	/healthz       liveness probe
//	/sessions      JSON session index (names, canvases, gens, clients)
//	/ws            WebSocket attach (?session=NAME&w=W&h=H)
//	/telemetry/    obs/export endpoints (snapshot, metrics, trace, pprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/sessions", s.handleSessions)
	mux.HandleFunc("/ws", s.handleWS)
	mux.Handle("/telemetry/", http.StripPrefix("/telemetry", export.Handler()))
	return mux
}

// sessionInfo is one row of the /sessions index.
type sessionInfo struct {
	Name    string           `json:"name"`
	Canvas  string           `json:"canvas"`
	Clients int              `json:"clients"`
	Gens    map[string]int64 `json:"gens"`
	Snap    uint64           `json:"snap"`
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	infos := make([]sessionInfo, 0)
	for _, name := range s.SessionNames() {
		sess, ok := s.Session(name)
		if !ok {
			continue
		}
		gens, seq := sess.Generations()
		infos = append(infos, sessionInfo{
			Name: sess.Name, Canvas: sess.Canvas,
			Clients: sess.Clients(), Gens: gens, Snap: seq,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(infos)
}

// handleWS upgrades the connection, attaches a client to the requested
// session, and blocks for the client's lifetime so r.Context() remains
// the client context — server shutdown and transport loss both cancel
// it.
func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sess, ok := s.Session(q.Get("session"))
	if !ok {
		http.Error(w, fmt.Sprintf("no such session %q", q.Get("session")), http.StatusNotFound)
		return
	}
	width, _ := strconv.Atoi(q.Get("w"))
	height, _ := strconv.Atoi(q.Get("h"))
	ws, err := Upgrade(w, r)
	if err != nil {
		return // Upgrade already wrote the HTTP error
	}
	defer ws.Close()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	c := sess.attach(ctx, ws, width, height)
	defer sess.detach(c)

	snap := sess.src.current()
	hello := Hello{
		Type: "hello", Session: sess.Name, Client: c.id,
		W: c.viewer.W, H: c.viewer.H,
		Tables: snap.TableNames(), Gens: snap.Generations(), Snap: snap.Seq(),
	}
	if err := c.sendJSON(hello); err != nil {
		return
	}
	_ = c.run(ctx)
}

// Start listens on addr and serves Handler in the background, returning
// the bound address ("127.0.0.1:0" picks a free port).
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.hsrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the HTTP listener and the event pump.
func (s *Server) Close() error {
	s.cancel()
	var err error
	if s.hsrv != nil {
		err = s.hsrv.Close()
	}
	s.pumpCancel()
	<-s.pumpDone
	return err
}
