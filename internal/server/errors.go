package server

import "errors"

// Sentinel causes for the server API. Every error returned across the
// package boundary wraps one of these (or a typed error from db /
// dataflow), so callers route with errors.Is instead of parsing
// messages — the same contract db and dataflow already keep, enforced
// by the errtype pass.
var (
	// ErrSessionExists is returned when AddSession is given a name that
	// is already registered.
	ErrSessionExists = errors.New("session already exists")
	// ErrBadCanvas is returned when a session's canvas is not fed by a
	// program box — there is nothing to render incrementally.
	ErrBadCanvas = errors.New("canvas is not fed by a program box")
	// ErrBadHandshake is returned when the WebSocket opening handshake
	// fails on either side: a non-upgrade request, an unsupported
	// version or scheme, a missing key, or a refused/forged accept.
	ErrBadHandshake = errors.New("websocket handshake failed")
	// ErrProtocol is returned when a WebSocket peer violates the
	// framing protocol mid-connection: stray continuations, interleaved
	// messages, unknown opcodes, or oversized payloads.
	ErrProtocol = errors.New("websocket protocol violation")
)
