package server

import (
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/rel"
)

// snapSource pins a session's evaluator to one immutable db.Snap,
// swapped atomically when the session applies a batch of change
// events. Every firing between swaps resolves tables against the same
// catalog view, so a frame — or a whole set of concurrent client
// frames — observes one consistent generation vector. It implements
// dataflow.TableSource.
type snapSource struct {
	p atomic.Pointer[db.Snap]
}

func newSnapSource(s *db.Snap) *snapSource {
	src := &snapSource{}
	src.p.Store(s)
	return src
}

// Table implements dataflow.TableSource.
func (s *snapSource) Table(name string) (*rel.Relation, error) { return s.p.Load().Table(name) }

// TableNames implements dataflow.TableSource.
func (s *snapSource) TableNames() []string { return s.p.Load().TableNames() }

// current returns the pinned snapshot.
func (s *snapSource) current() *db.Snap { return s.p.Load() }

// swap advances the pinned snapshot.
func (s *snapSource) swap(next *db.Snap) { s.p.Store(next) }
