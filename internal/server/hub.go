package server

import "repro/internal/db"

// The event pump is the server's subscription half: one goroutine
// drains the database's typed event stream and turns each batch into
// exactly one snapshot advance per session. Writers publish events
// without blocking (db.Subscribe buffers and coalesces per subscriber),
// the pump batches whatever has queued up, and ApplyEvents briefly
// excludes renders while swapping the pinned snapshot — so a burst of
// writes costs each session one re-render, not one per write.

func (s *Server) startPump() {
	ch, cancel := s.db.Subscribe()
	s.pumpCancel = cancel
	s.pumpDone = make(chan struct{})
	go s.pump(ch)
}

func (s *Server) pump(ch <-chan db.Event) {
	defer close(s.pumpDone)
	for {
		ev, ok := <-ch
		if !ok {
			return
		}
		evs := []db.Event{ev}
	drain:
		for {
			select {
			case more, ok := <-ch:
				if !ok {
					break drain
				}
				evs = append(evs, more)
			default:
				break drain
			}
		}
		for _, sess := range s.sessionList() {
			sess.ApplyEvents(s.ctx, evs)
		}
	}
}
