package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/raster"
	"repro/internal/viewer"
)

// client is one attached WebSocket connection: its own viewer (pan,
// zoom, elevation, framebuffer size) over the session's shared program.
// All sends originate from the run loop goroutine or, for gens
// broadcasts, from the event pump; WSConn serializes writers and
// WritePair keeps each FrameMeta adjacent to its PNG.
type client struct {
	id      string
	session *Session
	ws      *WSConn
	viewer  *viewer.Viewer

	// dirty carries the newest pending invalidation; capacity 1 with
	// drop-oldest semantics coalesces bursts into one re-render.
	dirty chan GensMsg

	frameSeq int64 // run-loop goroutine only
}

// frame is one rendered payload: the meta message and the PNG it
// announces.
type frame struct {
	meta FrameMeta
	png  []byte
}

// run drives the client until its connection closes or ctx is
// cancelled: decode ops, apply them to the viewer, render, push frames,
// and re-render on invalidation. It owns frameSeq and is the only
// goroutine that sends frames on this connection.
func (c *client) run(ctx context.Context) error {
	ops := make(chan ClientOp, 16)
	readErr := make(chan error, 1)
	go c.readLoop(ctx, ops, readErr)

	// Initial frame: every client starts with a picture in hand.
	if err := c.renderAndSend(ctx, ""); err != nil {
		c.sendError(err)
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case err := <-readErr:
			if err == io.EOF {
				return nil
			}
			return err
		case op := <-ops:
			c.handleOp(ctx, op)
		case msg := <-c.dirty:
			if err := c.sendJSON(msg); err != nil {
				return err
			}
			if err := c.renderAndSend(ctx, ""); err != nil {
				c.sendError(err)
			}
		}
	}
}

// readLoop decodes client ops off the wire and feeds them to run.
func (c *client) readLoop(ctx context.Context, ops chan<- ClientOp, readErr chan<- error) {
	for {
		op, payload, err := c.ws.ReadMessage()
		if err != nil {
			readErr <- err
			return
		}
		if op != OpText {
			continue
		}
		var cop ClientOp
		if err := json.Unmarshal(payload, &cop); err != nil {
			c.sendError(fmt.Errorf("server: bad op: %w", err))
			continue
		}
		select {
		case ops <- cop:
		case <-ctx.Done():
			return
		}
	}
}

// handleOp applies one viewer operation and pushes the resulting frame.
func (c *client) handleOp(ctx context.Context, op ClientOp) {
	obs.Inc(obs.ServerOps)
	ctx, sp := obs.StartSpanCtx(ctx, obs.SpanServerOp, "op", op.Op, "client", c.id)
	defer sp.End()
	s := c.session
	if op.Op == "update" {
		// Database write, not a viewer op: runs against the pinned
		// snapshot without the session lock (the write path takes the
		// database's own lock; the committed event comes back through
		// the pump and re-renders every client, this one included).
		if err := s.updateField(s.src.current(), op.Table, op.Row, op.Col, op.Input); err != nil {
			c.sendError(err)
			return
		}
		_ = c.sendJSON(AckMsg{Type: "ack", Op: op.Op, Token: op.Token})
		return
	}
	s.mu.RLock()
	err := c.applyOp(op)
	var f *frame
	if err == nil {
		f, err = c.renderLocked(ctx, op.Token)
	}
	s.mu.RUnlock()
	if err != nil {
		c.sendError(err)
		return
	}
	if err := c.sendFrame(f); err != nil {
		_ = c.ws.Close()
	}
}

// applyOp mutates this client's view state. Pan and zoom may demand the
// program (viewer state is created lazily from the display group), so
// the caller holds the session read lock.
func (c *client) applyOp(op ClientOp) error {
	v := c.viewer
	switch op.Op {
	case "pan":
		return v.Pan(op.Member, op.DX, op.DY)
	case "panTo":
		return v.PanTo(op.Member, op.X, op.Y)
	case "zoom":
		return v.Zoom(op.Member, op.Factor)
	case "elev":
		return v.SetElevation(op.Member, op.Elev)
	case "view":
		if err := v.PanTo(op.Member, op.X, op.Y); err != nil {
			return err
		}
		return v.SetElevation(op.Member, op.Elev)
	case "resize":
		if op.W <= 0 || op.H <= 0 || op.W > 4096 || op.H > 4096 {
			return fmt.Errorf("server: bad resize %dx%d", op.W, op.H)
		}
		v.W, v.H = op.W, op.H
		return nil
	case "render":
		return nil
	default:
		return fmt.Errorf("server: unknown op %q", op.Op)
	}
}

// renderAndSend renders under the session read lock and pushes the
// frame after releasing it.
func (c *client) renderAndSend(ctx context.Context, token string) error {
	c.session.mu.RLock()
	f, err := c.renderLocked(ctx, token)
	c.session.mu.RUnlock()
	if err != nil {
		return err
	}
	return c.sendFrame(f)
}

// renderLocked paints one frame against the pinned snapshot. Caller
// holds the session read lock, so the snapshot — and therefore the
// generation vector stamped into the meta — cannot advance mid-frame.
func (c *client) renderLocked(ctx context.Context, token string) (*frame, error) {
	ctx, tc := obs.EnsureTrace(ctx, "serve:"+c.session.Name+"/"+c.id)
	ctx, sp := obs.StartSpanCtx(ctx, obs.SpanServerFrame, "session", c.session.Name, "client", c.id)
	defer sp.End()
	snap := c.session.src.current()
	start := time.Now()
	img := raster.NewImage(c.viewer.W, c.viewer.H)
	if _, err := c.viewer.RenderIntoCtx(ctx, img); err != nil {
		return nil, err
	}
	renderNS := time.Since(start)
	var buf bytes.Buffer
	if err := img.WritePNG(&buf); err != nil {
		return nil, err
	}
	c.frameSeq++
	meta := FrameMeta{
		Type:     "frame",
		Seq:      c.frameSeq,
		Token:    token,
		W:        c.viewer.W,
		H:        c.viewer.H,
		Viewport: c.viewport(),
		Gens:     snap.Generations(),
		Snap:     snap.Seq(),
		RenderNS: renderNS.Nanoseconds(),
		PNGBytes: buf.Len(),
	}
	if tc != nil {
		meta.TraceID = tc.TraceID
	}
	obs.Inc(obs.ServerFrames)
	obs.Add(obs.ServerFrameBytes, int64(buf.Len()))
	obs.Observe(obs.ServerFrameNS, renderNS)
	return &frame{meta: meta, png: buf.Bytes()}, nil
}

// viewport reports member 0's view state; renderLocked runs after a
// render, so states exist whenever the display group is non-empty.
func (c *client) viewport() Viewport {
	states := c.viewer.States()
	if len(states) == 0 {
		return Viewport{}
	}
	return Viewport{CX: states[0].Center.X, CY: states[0].Center.Y, Elev: states[0].Elevation}
}

// invalidate hands the client the newest generation vector, replacing
// any undelivered one.
func (c *client) invalidate(msg GensMsg) {
	for {
		select {
		case c.dirty <- msg:
			return
		default:
			select {
			case <-c.dirty:
			default:
			}
		}
	}
}

func (c *client) sendFrame(f *frame) error {
	mb, err := json.Marshal(f.meta)
	if err != nil {
		return err
	}
	return c.ws.WritePair(OpText, mb, OpBinary, f.png)
}

func (c *client) sendJSON(v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.ws.WriteMessage(OpText, b)
}

func (c *client) sendError(err error) {
	msg := ErrorMsg{Type: "error", Error: err.Error()}
	if errors.Is(err, db.ErrSnapshotStale) {
		msg.Code = ErrorCodeStale
	}
	_ = c.sendJSON(msg)
}
