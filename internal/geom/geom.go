// Package geom provides the small geometric vocabulary shared by the
// Tioga-2 drawing, viewing, and rasterization layers: 2-D points and
// rectangles in canvas coordinates, n-dimensional positions and ranges for
// viewer panning/sliders, and the affine canvas-to-screen transform used by
// viewers when projecting tuples onto a framebuffer.
package geom

import (
	"fmt"
	"math"
)

// Point is a location on a 2-D canvas. Canvas coordinates are world
// coordinates: unbounded floats, y increasing upward (screen flipping is the
// rasterizer's concern).
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s in both dimensions.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle on the canvas. Min is the lower-left
// corner and Max the upper-right; a Rect with Min==Max is empty.
type Rect struct {
	Min, Max Point
}

// R constructs a Rect from two corner coordinates, normalizing so that
// Min <= Max in both dimensions.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// W returns the rectangle's width.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the rectangle's height.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Empty reports whether the rectangle has zero (or negative) area.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Contains reports whether p lies inside r (inclusive of Min, exclusive of
// Max, the half-open convention used for culling).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// ContainsClosed reports whether p lies inside r inclusive of both corners.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Overlaps reports whether r and s share any area.
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Intersect returns the largest rectangle contained in both r and s. If the
// rectangles do not overlap the result is empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle is the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand returns r grown by d on every side (shrunk if d is negative).
func (r Rect) Expand(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Translate returns r shifted by the vector p.
func (r Rect) Translate(p Point) Rect {
	return Rect{Min: r.Min.Add(p), Max: r.Max.Add(p)}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s-%s]", r.Min, r.Max)
}

// Range is a closed interval [Lo, Hi] on one dimension, used for slider
// positions and elevation ranges (Set Range, Section 6.1 of the paper).
type Range struct {
	Lo, Hi float64
}

// Rg constructs a Range, normalizing so Lo <= Hi.
func Rg(lo, hi float64) Range {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Range{Lo: lo, Hi: hi}
}

// Contains reports whether v lies in the closed interval.
func (g Range) Contains(v float64) bool { return v >= g.Lo && v <= g.Hi }

// Overlaps reports whether g and h intersect.
func (g Range) Overlaps(h Range) bool { return g.Lo <= h.Hi && h.Lo <= g.Hi }

// Width returns Hi-Lo.
func (g Range) Width() float64 { return g.Hi - g.Lo }

// Clamp returns v limited to the interval.
func (g Range) Clamp(v float64) float64 {
	if v < g.Lo {
		return g.Lo
	}
	if v > g.Hi {
		return g.Hi
	}
	return v
}

// String implements fmt.Stringer.
func (g Range) String() string { return fmt.Sprintf("[%g,%g]", g.Lo, g.Hi) }

// Position is the location of a viewer in an n-dimensional visualization
// space plus an elevation: the paper's "n+1-dimensional position" (Section
// 2). Coords[0] and Coords[1] are the canvas x and y; any further
// coordinates are slider dimensions. Elevation is the zoom axis: larger
// elevations see more of the canvas.
type Position struct {
	Coords    []float64
	Elevation float64
}

// NewPosition returns a Position of dimension n centered at the origin with
// the given elevation.
func NewPosition(n int, elevation float64) Position {
	return Position{Coords: make([]float64, n), Elevation: elevation}
}

// Dim returns the number of panning dimensions.
func (p Position) Dim() int { return len(p.Coords) }

// Clone returns a deep copy so viewers can be cloned or slaved without
// aliasing position state.
func (p Position) Clone() Position {
	c := make([]float64, len(p.Coords))
	copy(c, p.Coords)
	return Position{Coords: c, Elevation: p.Elevation}
}

// Pan shifts dimension d by delta. Panning an out-of-range dimension is a
// no-op, which keeps lifted group operations safe.
func (p *Position) Pan(d int, delta float64) {
	if d >= 0 && d < len(p.Coords) {
		p.Coords[d] += delta
	}
}

// String implements fmt.Stringer.
func (p Position) String() string {
	return fmt.Sprintf("pos%v@%g", p.Coords, p.Elevation)
}

// Transform is the affine canvas-to-screen map used when a viewer renders:
// screen = (canvas - Origin) * Scale + ScreenOffset, with y flipped because
// screen y grows downward.
type Transform struct {
	Origin       Point   // canvas point mapped to ScreenOffset
	Scale        float64 // pixels per canvas unit
	ScreenOffset Point   // screen-space location of Origin
	ScreenHeight float64 // for y-flip
}

// Apply maps a canvas point to screen pixels.
func (t Transform) Apply(p Point) Point {
	x := (p.X-t.Origin.X)*t.Scale + t.ScreenOffset.X
	y := (p.Y-t.Origin.Y)*t.Scale + t.ScreenOffset.Y
	return Point{x, t.ScreenHeight - y}
}

// ApplyRect maps a canvas rectangle to a screen rectangle (re-normalized
// because the y-flip swaps corners).
func (t Transform) ApplyRect(r Rect) Rect {
	a, b := t.Apply(r.Min), t.Apply(r.Max)
	return R(a.X, a.Y, b.X, b.Y)
}

// Invert maps a screen point back to canvas coordinates, used when a click
// must be resolved to a tuple (updates, Section 8).
func (t Transform) Invert(p Point) Point {
	y := t.ScreenHeight - p.Y
	return Point{
		X: (p.X-t.ScreenOffset.X)/t.Scale + t.Origin.X,
		Y: (y-t.ScreenOffset.Y)/t.Scale + t.Origin.Y,
	}
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// AlmostEqual reports whether two floats differ by less than eps, for tests
// and for slider hit-testing.
func AlmostEqual(a, b, eps float64) bool { return math.Abs(a-b) < eps }
