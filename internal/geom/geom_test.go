package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(Pt(0, 0)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(5, 7, 1, 2)
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 7) {
		t.Fatalf("R did not normalize: %v", r)
	}
	if r.W() != 4 || r.H() != 5 {
		t.Errorf("W/H = %g/%g", r.W(), r.H())
	}
	if r.Center() != Pt(3, 4.5) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},    // Min inclusive
		{Pt(10, 10), false}, // Max exclusive
		{Pt(-1, 5), false},
		{Pt(5, 11), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !r.ContainsClosed(Pt(10, 10)) {
		t.Error("ContainsClosed should include Max")
	}
}

func TestRectOverlapsIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	c := R(20, 20, 30, 30)
	if !a.Overlaps(b) || b.Overlaps(c) {
		t.Fatal("overlap misclassified")
	}
	if got := a.Intersect(b); got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	if got := a.Union(c); got != R(0, 0, 30, 30) {
		t.Errorf("Union = %v", got)
	}
	var empty Rect
	if got := empty.Union(a); got != a {
		t.Errorf("empty Union identity failed: %v", got)
	}
}

func TestRectExpandTranslate(t *testing.T) {
	r := R(2, 2, 4, 4)
	if got := r.Expand(1); got != R(1, 1, 5, 5) {
		t.Errorf("Expand = %v", got)
	}
	if got := r.Expand(-2); !got.Empty() {
		t.Errorf("over-shrunk Expand = %v, want empty", got)
	}
	if got := r.Translate(Pt(1, -1)); got != R(3, 1, 5, 3) {
		t.Errorf("Translate = %v", got)
	}
}

func TestRange(t *testing.T) {
	g := Rg(5, 1)
	if g.Lo != 1 || g.Hi != 5 {
		t.Fatalf("Rg did not normalize: %v", g)
	}
	if !g.Contains(1) || !g.Contains(5) || g.Contains(5.01) {
		t.Error("Contains is not a closed interval")
	}
	if !g.Overlaps(Rg(5, 9)) || g.Overlaps(Rg(6, 9)) {
		t.Error("Overlaps misclassified")
	}
	if g.Clamp(0) != 1 || g.Clamp(9) != 5 || g.Clamp(3) != 3 {
		t.Error("Clamp wrong")
	}
	if g.Width() != 4 {
		t.Errorf("Width = %g", g.Width())
	}
}

func TestPosition(t *testing.T) {
	p := NewPosition(3, 50)
	if p.Dim() != 3 || p.Elevation != 50 {
		t.Fatalf("NewPosition = %v", p)
	}
	p.Pan(1, 2.5)
	if p.Coords[1] != 2.5 {
		t.Errorf("Pan failed: %v", p.Coords)
	}
	p.Pan(7, 1) // out of range: no-op
	c := p.Clone()
	c.Coords[0] = 99
	if p.Coords[0] == 99 {
		t.Error("Clone aliases coords")
	}
}

func TestTransformRoundTrip(t *testing.T) {
	tr := Transform{
		Origin:       Pt(10, 20),
		Scale:        4,
		ScreenOffset: Pt(100, 50),
		ScreenHeight: 480,
	}
	f := func(x, y float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := Pt(x, y)
		back := tr.Invert(tr.Apply(p))
		return AlmostEqual(back.X, p.X, 1e-6) && AlmostEqual(back.Y, p.Y, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransformApplyRect(t *testing.T) {
	tr := Transform{Origin: Pt(0, 0), Scale: 2, ScreenOffset: Pt(0, 0), ScreenHeight: 100}
	r := tr.ApplyRect(R(0, 0, 10, 10))
	// y flips: canvas (0..10) maps to screen (100 down to 80).
	if r.Min.X != 0 || r.Max.X != 20 {
		t.Errorf("x mapping wrong: %v", r)
	}
	if r.Min.Y != 80 || r.Max.Y != 100 {
		t.Errorf("y flip wrong: %v", r)
	}
}

func TestRectPropertyIntersectWithin(t *testing.T) {
	f := func(x0, y0, x1, y1, u0, v0, u1, v1 float64) bool {
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1000)
		}
		a := R(bound(x0), bound(y0), bound(x1), bound(y1))
		b := R(bound(u0), bound(v0), bound(u1), bound(v1))
		in := a.Intersect(b)
		if in.Empty() {
			return true
		}
		// Every corner of the intersection lies in both inputs (closed).
		return a.ContainsClosed(in.Min) && a.ContainsClosed(in.Max) &&
			b.ContainsClosed(in.Min) && b.ContainsClosed(in.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if Lerp(0, 10, 0.5) != 5 {
		t.Error("Lerp midpoint")
	}
	if Lerp(2, 2, 0.7) != 2 {
		t.Error("Lerp constant")
	}
}
