package rel

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/btree"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/types"
)

// Project is standard database projection (Figure 3): the result keeps the
// named stored columns in the given order. Computed attributes whose
// references survive are carried along; others are dropped, matching the
// paper's note that projecting out fields a display function needs changes
// the visualization (the default display adapts).
func Project(r *Relation, names []string) (*Relation, error) {
	schema, err := r.schema.project(names)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(names))
	for i, n := range names {
		idxs[i] = r.schema.Index(n)
	}
	out := r.derive(schema, true)
	n := r.Len()
	out.tuples = make([][]types.Value, n)
	rows := make([]int, n)
	rd := r.reader()
	for ti := 0; ti < n; ti++ {
		tup := rd.at(ti)
		nt := make([]types.Value, len(idxs))
		for i, ci := range idxs {
			nt[i] = tup[ci]
		}
		out.tuples[ti] = nt
		rows[ti] = ti
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("rel: project: %w", err)
	}
	out.setProv(r, rows)
	return out, nil
}

// Restrict filters a relation to tuples satisfying a predicate (Figure 3).
// When the predicate is a simple comparison on an indexed stored column,
// the index is scanned instead of the heap; otherwise every row is
// evaluated.
func Restrict(r *Relation, pred expr.Node) (*Relation, error) {
	if err := expr.CheckPredicate(pred, r); err != nil {
		return nil, err
	}
	out := r.derive(r.schema, true)
	obs.Add(obs.RelRestrictRowsIn, int64(r.Len()))

	if rows, ok := indexedRows(r, pred); ok {
		obs.Inc(obs.RelRestrictIndexed)
		obs.Add(obs.RelRestrictRowsOut, int64(len(rows)))
		out.tuples = make([][]types.Value, 0, len(rows))
		rd := r.reader()
		for _, row := range rows {
			out.tuples = append(out.tuples, rd.take(row))
		}
		if err := rd.Err(); err != nil {
			return nil, fmt.Errorf("rel: restrict: %w", err)
		}
		out.setProv(r, rows)
		return out, nil
	}

	obs.Inc(obs.RelRestrictScans)
	n := r.Len()
	var rows []int
	cp := r.compilePredicate(pred)
	if kr, ok, err := kernelRestrictRows(r, pred, cp); err != nil {
		return nil, fmt.Errorf("rel: restrict: %w", err)
	} else if ok {
		// Columnar kernel scan: monomorphic loops over contiguous
		// chunk arrays produced selection vectors; kr is already in
		// ascending row order.
		rows = kr
	} else if cp != nil {
		// Compiled scan, chunk-parallel above the row threshold. Chunks
		// are contiguous and concatenated in order, so the output is
		// deterministic regardless of worker count.
		chunks := scanChunks(n, 0)
		chunkRows := make([][]int, chunks)
		err := runChunks(n, chunks, func(c, lo, hi int) error {
			keep := make([]int, 0, (hi-lo)/4+8)
			var scratch []types.Value
			rd := r.reader()
			for i := lo; i < hi; i++ {
				var ok bool
				var err error
				ok, scratch, err = cp.eval(rd.at(i), scratch)
				if err != nil {
					return fmt.Errorf("rel: restrict: %w", err)
				}
				if ok {
					keep = append(keep, i)
				}
			}
			if err := rd.Err(); err != nil {
				return fmt.Errorf("rel: restrict: %w", err)
			}
			chunkRows[c] = keep
			return nil
		})
		if err != nil {
			return nil, err
		}
		total := 0
		for _, ks := range chunkRows {
			total += len(ks)
		}
		rows = make([]int, 0, total)
		for _, ks := range chunkRows {
			rows = append(rows, ks...)
		}
	} else {
		rows = make([]int, 0, n/4+8)
		cur := newRowCursor(r)
		for i := 0; i < n; i++ {
			cur.idx = i
			keep, err := expr.EvalPredicate(pred, cur)
			if err != nil {
				return nil, fmt.Errorf("rel: restrict: %w", err)
			}
			if keep {
				rows = append(rows, i)
			}
		}
		if err := cur.rd.Err(); err != nil {
			return nil, fmt.Errorf("rel: restrict: %w", err)
		}
	}
	out.tuples = make([][]types.Value, len(rows))
	rd := r.reader()
	for i, row := range rows {
		out.tuples[i] = rd.take(row)
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("rel: restrict: %w", err)
	}
	obs.Add(obs.RelRestrictRowsOut, int64(len(rows)))
	out.setProv(r, rows)
	return out, nil
}

// indexedRows recognizes predicates of the form col OP literal (or literal
// OP col) on an indexed column and answers them from the B-tree, returning
// matching rows in key order.
func indexedRows(r *Relation, pred expr.Node) ([]int, bool) {
	b, ok := pred.(*expr.Binary)
	if !ok {
		return nil, false
	}
	var col string
	var lit types.Value
	op := b.Op
	if ref, ok := b.L.(*expr.Ref); ok {
		if l, ok := b.R.(*expr.Lit); ok {
			col, lit = ref.Name, l.Val
		}
	} else if ref, ok := b.R.(*expr.Ref); ok {
		if l, ok := b.L.(*expr.Lit); ok {
			col, lit = ref.Name, l.Val
			// Flip the comparison: lit OP col == col flip(OP) lit.
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
	}
	if col == "" || lit.IsNull() {
		return nil, false
	}
	idx, ok := r.Index(col)
	if !ok {
		return nil, false
	}
	// Mixed int/float comparisons through the index would need care;
	// require the literal kind to match the column kind exactly.
	if k, _ := r.schema.KindOf(col); k != lit.Kind() {
		return nil, false
	}

	var rows []int
	switch op {
	case "=":
		rows = append(rows, idx.Get(lit)...)
	case "<":
		idx.AscendRange(nil, &lit, func(it btree.Item) bool {
			if c, _ := it.Key.Compare(lit); c < 0 {
				rows = append(rows, it.Rows...)
			}
			return true
		})
	case "<=":
		idx.AscendRange(nil, &lit, func(it btree.Item) bool {
			rows = append(rows, it.Rows...)
			return true
		})
	case ">":
		idx.AscendRange(&lit, nil, func(it btree.Item) bool {
			if c, _ := it.Key.Compare(lit); c > 0 {
				rows = append(rows, it.Rows...)
			}
			return true
		})
	case ">=":
		idx.AscendRange(&lit, nil, func(it btree.Item) bool {
			rows = append(rows, it.Rows...)
			return true
		})
	default:
		return nil, false
	}
	sort.Ints(rows)
	return rows, true
}

// Sample produces a random subset of the input: each tuple is retained
// with probability p (Figure 3). The paper motivates Sample as a way to
// improve interactive response by reducing data volume. The RNG is seeded
// so visualizations are reproducible; callers wanting variation pass
// different seeds.
func Sample(r *Relation, p float64, seed int64) (*Relation, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("rel: sample probability %g out of [0,1]", p)
	}
	obs.Inc(obs.RelSamples)
	rng := rand.New(rand.NewSource(seed))
	out := r.derive(r.schema, true)
	// Expected output size is p·n; pad a little so typical draws append
	// without growing.
	n := r.Len()
	est := int(float64(n)*p) + 16
	if est > n {
		est = n
	}
	out.tuples = make([][]types.Value, 0, est)
	rows := make([]int, 0, est)
	rd := r.reader()
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			out.tuples = append(out.tuples, rd.take(i))
			rows = append(rows, i)
		}
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("rel: sample: %w", err)
	}
	out.setProv(r, rows)
	return out, nil
}

// JoinStrategy selects the join algorithm behind the Join box.
type JoinStrategy int

// Join strategies. JoinAuto uses a hash join when the predicate is a
// conjunction containing an equality between one attribute of each input,
// and otherwise falls back to a nested loop.
const (
	JoinAuto JoinStrategy = iota
	JoinHash
	JoinNestedLoop
)

// joinShape builds the output shape of a join of l and r: l's stored
// columns followed by r's (collisions disambiguated with a "_r" suffix),
// with computed attributes of both inputs carried where their references
// survive. The returned map takes r's original column names to their
// disambiguated names in the join scope.
func joinShape(l, r *Relation) (*Relation, map[string]string, error) {
	rRename := make(map[string]string)
	cols := l.schema.Columns()
	for _, c := range r.schema.Columns() {
		name := c.Name
		if l.schema.Has(name) {
			name = name + "_r"
			for l.schema.Has(name) || r.schema.Has(name) {
				name += "_"
			}
			rRename[c.Name] = name
		}
		cols = append(cols, Column{Name: name, Kind: c.Kind})
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, fmt.Errorf("rel: join: %w", err)
	}

	out := &Relation{schema: schema}
	// Carry computed attributes that still resolve.
	for _, src := range [][]Computed{l.computed, r.computed} {
		for _, c := range src {
			ok := !out.HasAttr(c.Name)
			for _, ref := range expr.Refs(c.Expr) {
				if !out.HasAttr(ref) && !schema.Has(ref) {
					ok = false
					break
				}
			}
			if ok {
				out.computed = append(out.computed, c)
			}
		}
	}
	return out, rRename, nil
}

// Join computes the theta-join of l and r under pred (Figure 3). The
// output schema is l's stored columns followed by r's; name collisions are
// disambiguated by suffixing r's columns with "_r" (and the predicate sees
// the disambiguated names). Computed attributes of both inputs are carried
// over where their references survive.
func Join(l, r *Relation, pred expr.Node, strategy JoinStrategy) (*Relation, error) {
	out, rRename, err := joinShape(l, r)
	if err != nil {
		return nil, err
	}

	if err := expr.CheckPredicate(pred, out); err != nil {
		return nil, fmt.Errorf("rel: join predicate: %w", err)
	}

	// The residual predicate runs compiled when possible, and either way
	// over one scratch tuple reused across every candidate pair; only
	// kept pairs allocate an output tuple.
	cp := out.compilePredicate(pred)
	lw, rw := l.schema.Len(), r.schema.Len()
	scratch := make([]types.Value, 0, lw+rw)
	var matScratch []types.Value
	env := &scratchEnv{rel: out}
	emit := func(lt, rt []types.Value) ([]types.Value, error) {
		scratch = scratch[:0]
		scratch = append(scratch, lt...)
		scratch = append(scratch, rt...)
		var keep bool
		var err error
		if cp != nil {
			keep, matScratch, err = cp.eval(scratch, matScratch)
		} else {
			env.tuple = scratch
			keep, err = expr.EvalPredicate(pred, env)
		}
		if err != nil {
			return nil, err
		}
		if keep {
			return append([]types.Value(nil), scratch...), nil
		}
		return nil, nil
	}

	if strategy == JoinAuto || strategy == JoinHash {
		if la, ra, ok := equiKey(pred, l, r, rRename); ok {
			obs.Inc(obs.RelJoinHash)
			if err := hashJoin(out, l, r, la, ra, emit); err != nil {
				return nil, err
			}
			obs.Add(obs.RelJoinRowsOut, int64(len(out.tuples)))
			return out, nil
		}
		if strategy == JoinHash {
			return nil, fmt.Errorf("rel: join: hash strategy requires an equality predicate between the inputs")
		}
	}

	obs.Inc(obs.RelJoinNestedLoop)
	lrd, rrd := l.reader(), r.reader()
	for i, ln := 0, l.Len(); i < ln; i++ {
		lt := lrd.take(i)
		for j, rn := 0, r.Len(); j < rn; j++ {
			nt, err := emit(lt, rrd.at(j))
			if err != nil {
				return nil, fmt.Errorf("rel: join: %w", err)
			}
			if nt != nil {
				out.tuples = append(out.tuples, nt)
			}
		}
	}
	if err := lrd.Err(); err != nil {
		return nil, fmt.Errorf("rel: join: %w", err)
	}
	if err := rrd.Err(); err != nil {
		return nil, fmt.Errorf("rel: join: %w", err)
	}
	obs.Add(obs.RelJoinRowsOut, int64(len(out.tuples)))
	return out, nil
}

// bindScratch wraps a candidate output tuple (not yet appended) as an
// expr.Env against the output relation's schema and computed attributes.
// Join allocates one scratchEnv and rebinds its tuple per candidate pair
// instead of calling this per row.
func (r *Relation) bindScratch(tuple []types.Value) expr.Env {
	return &scratchEnv{rel: r, tuple: tuple}
}

type scratchEnv struct {
	rel   *Relation
	tuple []types.Value
}

// AttrValue implements expr.Env.
func (s *scratchEnv) AttrValue(name string) (types.Value, bool) {
	if i := s.rel.schema.Index(name); i >= 0 {
		return s.tuple[i], true
	}
	for _, c := range s.rel.computed {
		if c.Name == name {
			v, err := expr.Eval(c.Expr, s)
			if err != nil {
				return types.Null, true
			}
			return v, true
		}
	}
	return types.Null, false
}

// equiKey finds an equality conjunct "lcol = rcol" usable as a hash key.
// rRename maps r's original column names to their disambiguated names in
// the join scope; the returned ra is r's ORIGINAL column name.
func equiKey(pred expr.Node, l, r *Relation, rRename map[string]string) (la, ra string, ok bool) {
	b, isBin := pred.(*expr.Binary)
	if !isBin {
		return "", "", false
	}
	if b.Op == "and" {
		if la, ra, ok = equiKey(b.L, l, r, rRename); ok {
			return la, ra, true
		}
		return equiKey(b.R, l, r, rRename)
	}
	if b.Op != "=" {
		return "", "", false
	}
	lr, lok := b.L.(*expr.Ref)
	rr, rok := b.R.(*expr.Ref)
	if !lok || !rok {
		return "", "", false
	}
	// Resolve each ref to a side. A ref names r's column either by its
	// original name (if unambiguous) or the renamed form.
	resolve := func(name string) (side int, col string) {
		if l.schema.Has(name) && r.schema.Has(name) {
			// Ambiguous original name: in the join scope it denotes l's
			// column; r's is reachable only via the rename.
			return 0, name
		}
		if l.schema.Has(name) {
			return 0, name
		}
		if r.schema.Has(name) {
			return 1, name
		}
		for orig, renamed := range rRename {
			if renamed == name {
				return 1, orig
			}
		}
		return -1, ""
	}
	s1, c1 := resolve(lr.Name)
	s2, c2 := resolve(rr.Name)
	switch {
	case s1 == 0 && s2 == 1:
		return c1, c2, true
	case s1 == 1 && s2 == 0:
		return c2, c1, true
	}
	return "", "", false
}

func hashJoin(out, l, r *Relation, la, ra string, emit func(lt, rt []types.Value) ([]types.Value, error)) error {
	li, ri := l.schema.Index(la), r.schema.Index(ra)
	if li < 0 || ri < 0 {
		return fmt.Errorf("rel: join: internal: bad equi columns %q/%q", la, ra)
	}
	// Build on the smaller input.
	build, probe := r, l
	bi, pi := ri, li
	buildIsRight := true
	if l.Len() < r.Len() {
		build, probe = l, r
		bi, pi = li, ri
		buildIsRight = false
	}
	table := make(map[valueKey][]int, build.Len())
	brd := build.reader()
	for row, n := 0, build.Len(); row < n; row++ {
		v := brd.value(row, bi)
		if v.IsNull() {
			continue
		}
		k := keyOf(v)
		table[k] = append(table[k], row)
	}
	prd := probe.reader()
	bget := build.reader() // random access into build during probe
	for prow, n := 0, probe.Len(); prow < n; prow++ {
		ptup := prd.at(prow)
		v := ptup[pi]
		if v.IsNull() {
			continue
		}
		for _, brow := range table[keyOf(v)] {
			btup := bget.take(brow)
			var lt, rt []types.Value
			if buildIsRight {
				lt, rt = ptup, btup
			} else {
				lt, rt = btup, ptup
			}
			nt, err := emit(lt, rt)
			if err != nil {
				return fmt.Errorf("rel: join: %w", err)
			}
			if nt != nil {
				out.tuples = append(out.tuples, nt)
			}
		}
	}
	for _, rd := range []*rowReader{&brd, &prd, &bget} {
		if err := rd.Err(); err != nil {
			return fmt.Errorf("rel: join: %w", err)
		}
	}
	return nil
}

// valueKey is an allocation-free comparable canonical form of a value for
// hash bucketing. Int and Float share a key when numerically equal
// (mirroring Value.Compare); Date keeps its own kind so 1996-05-12 never
// buckets with the int of its day count; text rides in str. NaN and
// negative zero are canonicalized so map equality (==) matches numeric
// equality.
type valueKey struct {
	kind types.Kind
	num  float64
	str  string
}

// keyOf canonicalizes a value into its bucketing key.
func keyOf(v types.Value) valueKey {
	switch v.Kind() {
	case types.Int, types.Float:
		f, _ := v.AsFloat()
		if f == 0 {
			f = 0 // fold -0 into +0; they compare equal
		}
		if math.IsNaN(f) {
			return valueKey{kind: types.Float, str: "NaN"} // NaN != NaN under ==
		}
		return valueKey{kind: types.Float, num: f}
	case types.Date:
		return valueKey{kind: types.Date, num: float64(v.DateDays())}
	case types.Bool:
		if v.Bool() {
			return valueKey{kind: types.Bool, num: 1}
		}
		return valueKey{kind: types.Bool}
	case types.Text:
		return valueKey{kind: types.Text, str: v.Text()}
	}
	return valueKey{} // null
}

// appendKeyBytes appends a canonical byte encoding of v's valueKey, for
// composite (whole-tuple) keys: a kind tag, then either a length-prefixed
// string (Text) or 8 canonical float bits. The encoding is a prefix code,
// so concatenated keys cannot realign across value boundaries.
func appendKeyBytes(b []byte, v types.Value) []byte {
	k := keyOf(v)
	b = append(b, byte(k.kind))
	if k.kind == types.Text {
		b = binary.AppendUvarint(b, uint64(len(k.str)))
		return append(b, k.str...)
	}
	f := k.num
	if k.str != "" {
		f = math.NaN() // canonical NaN bits for the NaN key
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	return append(b, buf[:]...)
}

// Sort returns the relation ordered by the named attribute (stored or
// computed), ascending or descending. Used by default displays and by the
// elevation map's drawing-order view.
func Sort(r *Relation, attr string, descending bool) (*Relation, error) {
	if !r.HasAttr(attr) {
		return nil, fmt.Errorf("rel: sort: no attribute %q", attr)
	}
	obs.Inc(obs.RelSorts)
	rows := make([]int, r.Len())
	for i := range rows {
		rows[i] = i
	}
	var sortErr error
	sort.SliceStable(rows, func(a, b int) bool {
		va := r.Row(rows[a]).Attr(attr)
		vb := r.Row(rows[b]).Attr(attr)
		c, err := va.Compare(vb)
		if err != nil && sortErr == nil {
			sortErr = err
		}
		if descending {
			return c > 0
		}
		return c < 0
	})
	if sortErr != nil {
		return nil, fmt.Errorf("rel: sort on %q: %w", attr, sortErr)
	}
	out := r.derive(r.schema, true)
	out.tuples = make([][]types.Value, len(rows))
	rd := r.reader()
	for i, row := range rows {
		out.tuples[i] = rd.take(row)
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("rel: sort on %q: %w", attr, err)
	}
	out.setProv(r, rows)
	return out, nil
}

// Union concatenates relations with equal schemas.
func Union(rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("rel: union of nothing")
	}
	for _, r := range rels[1:] {
		if !r.schema.Equal(rels[0].schema) {
			return nil, fmt.Errorf("rel: union: schema mismatch: %s vs %s", rels[0].schema, r.schema)
		}
	}
	out := rels[0].derive(rels[0].schema, true)
	for _, r := range rels {
		if r.cols == nil {
			out.tuples = append(out.tuples, r.tuples...)
			continue
		}
		rd := r.reader()
		for i, n := 0, r.Len(); i < n; i++ {
			out.tuples = append(out.tuples, rd.take(i))
		}
		if err := rd.Err(); err != nil {
			return nil, fmt.Errorf("rel: union: %w", err)
		}
	}
	return out, nil
}

// Partition splits a relation by a list of predicates; tuple membership is
// decided by the first predicate that matches (tuples matching none are
// dropped). This is the relational engine beneath Replicate (Section 7.4)
// and the multi-output Partition box.
func Partition(r *Relation, preds []expr.Node) ([]*Relation, error) {
	outs := make([]*Relation, len(preds))
	for i, p := range preds {
		if err := expr.CheckPredicate(p, r); err != nil {
			return nil, fmt.Errorf("rel: partition predicate %d: %w", i, err)
		}
		outs[i] = r.derive(r.schema, true)
	}
	cps := make([]*compiledPred, len(preds))
	for i, p := range preds {
		cps[i] = r.compilePredicate(p) // nil falls back to the interpreter
	}
	rows := make([][]int, len(preds))
	cur := newRowCursor(r)
	rd := r.reader()
	var scratch []types.Value
	for ti, n := 0, r.Len(); ti < n; ti++ {
		for pi, p := range preds {
			var keep bool
			var err error
			if cp := cps[pi]; cp != nil {
				keep, scratch, err = cp.eval(rd.at(ti), scratch)
			} else {
				cur.idx = ti
				keep, err = expr.EvalPredicate(p, cur)
			}
			if err != nil {
				return nil, fmt.Errorf("rel: partition: %w", err)
			}
			if keep {
				outs[pi].tuples = append(outs[pi].tuples, rd.take(ti))
				rows[pi] = append(rows[pi], ti)
				break
			}
		}
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("rel: partition: %w", err)
	}
	for pi := range outs {
		outs[pi].setProv(r, rows[pi])
	}
	return outs, nil
}

// MapColumn materializes a stored column from an expression evaluated per
// tuple, the engine beneath Set/Scale/Translate Attribute applied to a
// stored attribute. The column's kind follows the expression's type.
func MapColumn(r *Relation, col string, def expr.Node) (*Relation, error) {
	ci := r.schema.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("rel: map column: no stored column %q", col)
	}
	k, err := expr.Check(def, r)
	if err != nil {
		return nil, fmt.Errorf("rel: map column %q: %w", col, err)
	}
	cols := r.schema.Columns()
	cols[ci].Kind = k
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := r.derive(schema, true)
	n := r.Len()
	out.tuples = make([][]types.Value, n)
	rows := make([]int, n)
	if ce := r.compileExpr(def); ce != nil {
		// Compiled materialization, chunk-parallel above the row
		// threshold: chunks write disjoint index ranges of the
		// preallocated output, so order is deterministic by construction.
		chunks := scanChunks(n, 0)
		err := runChunks(n, chunks, func(c, lo, hi int) error {
			var scratch []types.Value
			rd := r.reader()
			for i := lo; i < hi; i++ {
				t := rd.at(i)
				var v types.Value
				var err error
				v, scratch, err = ce.eval(t, scratch)
				if err != nil {
					return fmt.Errorf("rel: map column %q row %d: %w", col, i, err)
				}
				nt := append([]types.Value(nil), t...)
				nt[ci] = v
				out.tuples[i] = nt
				rows[i] = i
			}
			return rd.Err()
		})
		if err != nil {
			return nil, err
		}
	} else {
		cur := newRowCursor(r)
		rd := r.reader()
		for i := 0; i < n; i++ {
			cur.idx = i
			v, err := expr.Eval(def, cur)
			if err != nil {
				return nil, fmt.Errorf("rel: map column %q row %d: %w", col, i, err)
			}
			nt := append([]types.Value(nil), rd.at(i)...)
			nt[ci] = v
			out.tuples[i] = nt
			rows[i] = i
		}
		if err := rd.Err(); err != nil {
			return nil, fmt.Errorf("rel: map column %q: %w", col, err)
		}
	}
	out.setProv(r, rows)
	return out, nil
}

// SwapColumns interchanges two stored attributes of the same type
// (Figure 5's Swap Attributes on stored columns) by swapping their names
// in the schema, which exchanges the attributes' values without touching
// tuple storage.
func SwapColumns(r *Relation, a, b string) (*Relation, error) {
	ai, bi := r.schema.Index(a), r.schema.Index(b)
	if ai < 0 || bi < 0 {
		return nil, fmt.Errorf("rel: swap: missing column %q or %q", a, b)
	}
	if r.schema.Col(ai).Kind != r.schema.Col(bi).Kind {
		return nil, fmt.Errorf("rel: swap: %q is %s but %q is %s",
			a, r.schema.Col(ai).Kind, b, r.schema.Col(bi).Kind)
	}
	cols := r.schema.Columns()
	cols[ai].Name, cols[bi].Name = cols[bi].Name, cols[ai].Name
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := r.derive(schema, true)
	out.tuples = r.tuples
	if r.cols != nil {
		// Share chunk storage under the renamed schema: the swap only
		// touches names, and chunks store no names, so the slots carry
		// over untouched.
		out.cols = &colStore{schema: schema, slots: r.cols.slots, rows: r.cols.rows, chunkRows: r.cols.chunkRows}
	}
	rows := make([]int, r.Len())
	for i := range rows {
		rows[i] = i
	}
	out.setProv(r, rows)
	return out, nil
}

// DropColumn removes one stored column (Remove Attribute on a stored
// attribute is Project over the survivors).
func DropColumn(r *Relation, col string) (*Relation, error) {
	if r.schema.Index(col) < 0 {
		return nil, fmt.Errorf("rel: drop: no stored column %q", col)
	}
	var keep []string
	for _, c := range r.schema.Columns() {
		if c.Name != col {
			keep = append(keep, c.Name)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("rel: drop: cannot remove the only column %q", col)
	}
	return Project(r, keep)
}

// DistinctValues returns the distinct values of an attribute in first-
// appearance order, used to expand an enumerated-type Replicate
// specification into predicates.
func DistinctValues(r *Relation, attr string) ([]types.Value, error) {
	if !r.HasAttr(attr) {
		return nil, fmt.Errorf("rel: no attribute %q", attr)
	}
	seen := make(map[valueKey]bool)
	var out []types.Value
	cu := r.NewCursor()
	for i := 0; i < r.Len(); i++ {
		cu.Seek(i)
		v := cu.Attr(attr)
		k := keyOf(v)
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// Distinct removes duplicate tuples (full-tuple equality), keeping first
// occurrences in order. Computed attributes are carried; provenance maps
// each survivor to its first occurrence.
func Distinct(r *Relation) *Relation {
	out := r.derive(r.schema, true)
	seen := make(map[string]bool, r.Len())
	var rows []int
	var buf []byte
	rd := r.reader()
	for i := 0; i < r.Len(); i++ {
		buf = buf[:0]
		for _, v := range rd.at(i) {
			buf = appendKeyBytes(buf, v)
		}
		key := string(buf)
		if seen[key] {
			continue
		}
		seen[key] = true
		out.tuples = append(out.tuples, rd.take(i))
		rows = append(rows, i)
	}
	out.setProv(r, rows)
	return out
}

// Limit keeps the first n tuples — the quick-look complement to Sample
// for interactive response.
func Limit(r *Relation, n int) (*Relation, error) {
	if n < 0 {
		return nil, fmt.Errorf("rel: limit must be non-negative, got %d", n)
	}
	if n > r.Len() {
		n = r.Len()
	}
	out := r.derive(r.schema, true)
	if r.cols == nil {
		out.tuples = r.tuples[:n]
	} else {
		out.tuples = make([][]types.Value, n)
		rd := r.reader()
		for i := 0; i < n; i++ {
			out.tuples[i] = rd.take(i)
		}
		if err := rd.Err(); err != nil {
			return nil, fmt.Errorf("rel: limit: %w", err)
		}
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	out.setProv(r, rows)
	return out, nil
}
