package rel

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/types"
)

// withColumnarOff runs fn with the columnar kernel disabled (compilation
// stays on), restoring the knob afterwards.
func withColumnarOff(t testing.TB, fn func()) {
	t.Helper()
	prev := SetColumnarDisabled(true)
	defer SetColumnarDisabled(prev)
	fn()
}

// kernelRelation builds a relation above the kernel's row threshold with
// every storable kind, nulls in every column, zero divisors, NaN floats,
// and computed attributes (one of which always errors), so the kernel's
// bitmap algebra is exercised against the interpreter over the full
// value space.
func kernelRelation(t testing.TB, n int) *Relation {
	t.Helper()
	r := New("K", MustSchema(
		Column{Name: "id", Kind: types.Int},
		Column{Name: "a", Kind: types.Int},
		Column{Name: "b", Kind: types.Int},
		Column{Name: "x", Kind: types.Float},
		Column{Name: "y", Kind: types.Float},
		Column{Name: "tag", Kind: types.Text},
		Column{Name: "flag", Kind: types.Bool},
		Column{Name: "d", Kind: types.Date},
		Column{Name: "d2", Kind: types.Date},
	))
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < n; i++ {
		x := rng.Float64()*40 - 20
		if rng.Intn(41) == 0 {
			x = math.NaN()
		}
		tu := []types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(21) - 10)),
			types.NewInt(int64(rng.Intn(7) - 3)), // zero divisors included
			types.NewFloat(x),
			types.NewFloat(rng.Float64()*10 - 5),
			types.NewText([]string{"a", "bb", "ccc", ""}[rng.Intn(4)]),
			types.NewBool(rng.Intn(2) == 0),
			types.NewDate(int64(rng.Intn(100))),
			types.NewDate(int64(rng.Intn(100))),
		}
		if rng.Intn(9) == 0 {
			tu[rng.Intn(8)+1] = types.Null
		}
		r.MustAppend(tu)
	}
	for _, c := range []struct{ name, def string }{
		{"score", "x * 2.0 + y"},
		{"ib", "a * 3 + id % 11"},
		{"hot", "x > 5.0 and flag"},
		{"broken", "a / (id - id)"},
	} {
		if err := r.AddComputed(c.name, expr.MustParse(c.def)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// asChunkBacked rebuilds r as a chunk-backed relation (lazily encoded
// from its frozen tuples) with the given chunk size, carrying the
// computed attributes over.
func asChunkBacked(t testing.TB, r *Relation, chunkRows int) *Relation {
	t.Helper()
	out, err := FromChunkSource(r.name+"_chunks", r.schema,
		&rowChunkSource{schema: r.schema, tuples: r.tuples, chunkRows: chunkRows})
	if err != nil {
		t.Fatal(err)
	}
	out.computed = append([]Computed(nil), r.computed...)
	return out
}

// kernelPreds is the differential corpus. kernel marks predicates the
// chunk kernel is expected to accept; the rest must reject cleanly and
// take the row path (Calls, text ordering, date arithmetic, float
// modulo, bool comparison).
var kernelPreds = []struct {
	src    string
	kernel bool
}{
	{"a + b * 2 - id % 7 > 0", true},
	{"b != 0 and a / b > 1", true}, // short-circuit masks the zero divisors
	{"b != 0 and a % b = 0", true},
	{"x > 10.0 or y < -2.5", true},
	{"x > a", true},
	{"a * 1.5 <= y + 0.25", true},
	{"tag = 'bb'", true},
	{"tag != 'a' and a >= 0", true},
	{"flag and x > 0.0", true},
	{"not flag or a = 3", true},
	{"d >= d2", true},
	{"d != d2 or flag", true},
	{"-a < 2 and -x < 19.5", true},
	{"a > 2 + 3", true},
	{"score > 1.0", true},
	{"ib > 5 and score < 30.0", true},
	{"broken > 0 or a < 0", true},                    // erroring computed reads as null
	{"x = x", true},                                  // NaN compares equal under three-way float compare
	{"id * 1000000000000 * 1000000000000 > 0", true}, // int64 wrap
	{"(a > 0 and b > 0) or (x < 0.0 and not flag)", true},
	{"hot or y > 4.0", true},
	{"len(tag) > 2", false},  // builtin call
	{"tag < 'c'", false},     // text ordering
	{"d - d2 > 10", false},   // date arithmetic
	{"y % 3.0 = 0.0", false}, // float modulo
	{"flag = true", false},   // bool comparison
	{"contains(tag, 'c')", false},
}

// TestKernelRestrictMatchesRowPaths holds the kernel equal to both the
// compiled-closure path and the interpreter over a relation large
// enough to clear the kernel threshold, and checks the kernel really
// ran (or really declined) per predicate.
func TestKernelRestrictMatchesRowPaths(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	r := kernelRelation(t, 2*DefaultChunkRows+123)
	for _, tc := range kernelPreds {
		pred := expr.MustParse(tc.src)
		before := obs.CounterValue(obs.RelKernelScans)
		got, err := Restrict(r, pred)
		if err != nil {
			t.Fatalf("kernel restrict %q: %v", tc.src, err)
		}
		ran := obs.CounterValue(obs.RelKernelScans) > before
		if ran != tc.kernel {
			t.Errorf("restrict %q: kernel ran=%v, want %v", tc.src, ran, tc.kernel)
		}
		var rowPath, interp *Relation
		withColumnarOff(t, func() {
			rowPath, err = Restrict(r, pred)
		})
		if err != nil {
			t.Fatalf("compiled restrict %q: %v", tc.src, err)
		}
		withInterpreter(t, func() {
			interp, err = Restrict(r, pred)
		})
		if err != nil {
			t.Fatalf("interpreted restrict %q: %v", tc.src, err)
		}
		kfp := relFingerprint(t, got)
		if cfp := relFingerprint(t, rowPath); kfp != cfp {
			t.Errorf("restrict %q: kernel differs from compiled row path", tc.src)
		}
		if ifp := relFingerprint(t, interp); kfp != ifp {
			t.Errorf("restrict %q: kernel differs from interpreter", tc.src)
		}
	}
}

// TestKernelChunkBackedMatches runs the corpus over a genuinely chunk-
// backed relation (small chunks, so many chunk boundaries) and holds it
// equal to the row-major interpreter.
func TestKernelChunkBackedMatches(t *testing.T) {
	row := kernelRelation(t, 3000)
	cb := asChunkBacked(t, row, 256)
	for _, tc := range kernelPreds {
		pred := expr.MustParse(tc.src)
		got, err := Restrict(cb, pred)
		if err != nil {
			t.Fatalf("chunk-backed restrict %q: %v", tc.src, err)
		}
		var want *Relation
		withInterpreter(t, func() {
			want, err = Restrict(row, pred)
		})
		if err != nil {
			t.Fatalf("interpreted restrict %q: %v", tc.src, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("restrict %q: %d rows vs %d interpreted", tc.src, got.Len(), want.Len())
		}
		for i := 0; i < got.Len(); i++ {
			gt, wt := got.Tuple(i), want.Tuple(i)
			for c := range gt {
				if keyOf(gt[c]) != keyOf(wt[c]) || gt[c].Kind() != wt[c].Kind() {
					t.Fatalf("restrict %q row %d col %d: %v vs %v", tc.src, i, c, gt[c], wt[c])
				}
			}
		}
	}
}

// TestKernelErrorParity: an unguarded zero divisor must surface the
// same error, attributed to the same first failing row, in all three
// execution modes — the kernel's error bitmap plus ascending row-wise
// fallback reproduces the serial scan's first error exactly.
func TestKernelErrorParity(t *testing.T) {
	r := kernelRelation(t, 2*DefaultChunkRows+50)
	for _, src := range []string{"a / b > 0", "a % b = 0", "y / 0.0 > 1.0", "a > 1 / 0"} {
		pred := expr.MustParse(src)
		_, kerr := Restrict(r, pred)
		if kerr == nil {
			t.Fatalf("restrict %q: kernel path did not error", src)
		}
		var cerr, ierr error
		withColumnarOff(t, func() { _, cerr = Restrict(r, pred) })
		withInterpreter(t, func() { _, ierr = Restrict(r, pred) })
		if cerr == nil || ierr == nil {
			t.Fatalf("restrict %q: row paths did not error", src)
		}
		if kerr.Error() != cerr.Error() || kerr.Error() != ierr.Error() {
			t.Fatalf("restrict %q error drift:\n  kernel      %v\n  compiled    %v\n  interpreted %v",
				src, kerr, cerr, ierr)
		}
	}
}

// TestKernelFusedMatchesChain holds the fused kernel equal to the
// kernel-off fused scan and to the unfused interpreted chain, over both
// row-major and chunk-backed sources.
func TestKernelFusedMatchesChain(t *testing.T) {
	r := kernelRelation(t, 2*DefaultChunkRows+123)
	cb := asChunkBacked(t, r, 512)
	pipelines := [][]FusedOp{
		{
			{Pred: expr.MustParse("a + b > -15")},
			{Project: []string{"id", "a", "b", "x", "flag"}},
			{Pred: expr.MustParse("flag and x > -10.0")},
		},
		{
			{Pred: expr.MustParse("score > -50.0")},
			{Pred: expr.MustParse("b != 0 and a / b >= 0")},
			{Project: []string{"id", "x"}},
		},
		{
			// Step 1 rejects kernel compilation (builtin call): the whole
			// pipeline must take the row path and still agree.
			{Pred: expr.MustParse("a > -8")},
			{Pred: expr.MustParse("len(tag) >= 1")},
		},
	}
	for pi, ops := range pipelines {
		before := obs.CounterValue(obs.RelKernelScans)
		res, err := FusedScan(r, ops, 4)
		if err != nil {
			t.Fatalf("pipeline %d fused: %v", pi, err)
		}
		t.Logf("pipeline %d: kernel scans +%d", pi, obs.CounterValue(obs.RelKernelScans)-before)
		var off *FusedResult
		withColumnarOff(t, func() { off, err = FusedScan(r, ops, 4) })
		if err != nil {
			t.Fatalf("pipeline %d fused (kernel off): %v", pi, err)
		}
		if relFingerprint(t, res.Out) != relFingerprint(t, off.Out) {
			t.Errorf("pipeline %d: fused kernel differs from row path", pi)
		}
		var want *Relation
		withInterpreter(t, func() {
			want = r
			for _, op := range ops {
				if op.Pred != nil {
					want, err = Restrict(want, op.Pred)
				} else {
					want, err = Project(want, op.Project)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
		})
		if relFingerprint(t, res.Out) != relFingerprint(t, want) {
			t.Errorf("pipeline %d: fused kernel differs from interpreted chain", pi)
		}

		cres, err := FusedScan(cb, ops, 4)
		if err != nil {
			t.Fatalf("pipeline %d chunk-backed fused: %v", pi, err)
		}
		if cres.Out.Len() != want.Len() {
			t.Errorf("pipeline %d: chunk-backed fused %d rows, want %d", pi, cres.Out.Len(), want.Len())
		}
	}
}

// TestKernelFusedErrorAttribution: a row that errors at step k must
// report step k — and only if it survived the earlier steps. The fused
// kernel ignores vector-lane errors on rows already deselected, exactly
// like the row-at-a-time short circuit.
func TestKernelFusedErrorAttribution(t *testing.T) {
	r := New("F", MustSchema(Column{Name: "v", Kind: types.Int}))
	for i := 0; i < 2*DefaultChunkRows; i++ {
		r.MustAppend([]types.Value{types.NewInt(int64(i))})
	}
	target := int64(DefaultChunkRows + 100) // even; sits in chunk 1

	// v = target survives step 0, then divides by zero at step 1.
	ops := []FusedOp{
		{Pred: expr.MustParse("v % 2 = 0")},
		{Pred: expr.MustParse("v / (v - 4196) >= 0")},
	}
	if target != 4196 {
		t.Fatalf("test constant drift: target=%d", target)
	}
	_, err := FusedScan(r, ops, 4)
	var se *FusedStepError
	if err == nil || !errors.As(err, &se) || se.Step != 1 {
		t.Fatalf("kernel fused error %v not attributed to step 1", err)
	}
	var offErr error
	withColumnarOff(t, func() { _, offErr = FusedScan(r, ops, 4) })
	if offErr == nil || err.Error() != offErr.Error() {
		t.Fatalf("kernel fused error %q differs from row path %q", err, offErr)
	}

	// Deselect the row at step 0 instead: no error anywhere.
	ops[0] = FusedOp{Pred: expr.MustParse("v % 2 = 1")}
	res, err := FusedScan(r, ops, 4)
	if err != nil {
		t.Fatalf("deselected erroring row still raised: %v", err)
	}
	var off *FusedResult
	withColumnarOff(t, func() { off, offErr = FusedScan(r, ops, 4) })
	if offErr != nil {
		t.Fatal(offErr)
	}
	if relFingerprint(t, res.Out) != relFingerprint(t, off.Out) {
		t.Error("fused kernel differs from row path after deselection")
	}
}

// TestKernelFallbackCounter: error rows must be counted as fallback
// rows, and scans without errors must not touch the counter.
func TestKernelFallbackCounter(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	r := kernelRelation(t, DefaultChunkRows+10)
	before := obs.CounterValue(obs.RelKernelFallback)
	if _, err := Restrict(r, expr.MustParse("a + 1 > 0")); err != nil {
		t.Fatal(err)
	}
	if got := obs.CounterValue(obs.RelKernelFallback); got != before {
		t.Fatalf("clean scan advanced fallback counter by %d", got-before)
	}
	_, err := Restrict(r, expr.MustParse("a / b > 0")) // errors at first b=0
	if err == nil {
		t.Fatal("expected zero-divisor error")
	}
	if got := obs.CounterValue(obs.RelKernelFallback); got <= before {
		t.Fatal("erroring scan did not count fallback rows")
	}
}
