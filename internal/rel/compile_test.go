package rel

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

// relFingerprint flattens a relation — schema, computed defs, tuples, and
// per-row provenance — for exact equality checks across execution modes.
func relFingerprint(t testing.TB, r *Relation) string {
	t.Helper()
	out := r.schema.String() + "|"
	for _, c := range r.computed {
		out += fmt.Sprintf("%s=%s:%s;", c.Name, c.Expr, c.Kind)
	}
	out += "|"
	for i := 0; i < r.Len(); i++ {
		base, row := r.BaseRow(i)
		out += fmt.Sprintf("%v@%s[%d];", r.Tuple(i), base.Name(), row)
	}
	return out
}

// withInterpreter runs fn with expression compilation disabled, restoring
// the knob afterwards.
func withInterpreter(t testing.TB, fn func()) {
	t.Helper()
	prev := SetCompileDisabled(true)
	defer SetCompileDisabled(prev)
	fn()
}

// bigRelation builds n rows with nulls sprinkled in, plus computed
// attributes, so compiled and interpreted scans cover the full value
// space.
func bigRelation(t testing.TB, n int) *Relation {
	t.Helper()
	r := New("Big", MustSchema(
		Column{Name: "id", Kind: types.Int},
		Column{Name: "grp", Kind: types.Int},
		Column{Name: "val", Kind: types.Float},
		Column{Name: "tag", Kind: types.Text},
	))
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		tu := []types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(7))),
			types.NewFloat(rng.Float64()*100 - 50),
			types.NewText([]string{"a", "bb", "ccc", ""}[rng.Intn(4)]),
		}
		if rng.Intn(11) == 0 {
			tu[rng.Intn(3)+1] = types.Null
		}
		r.MustAppend(tu)
	}
	if err := r.AddComputed("score", expr.MustParse("val * 2.0 + float(grp)")); err != nil {
		t.Fatal(err)
	}
	return r
}

var differentialPreds = []string{
	"id % 3 = 0 and val > -10.0",
	"score > 0.0 or tag = 'bb'",
	"grp < 4 and len(tag) >= 2",
	"val * val > 100.0",
	"contains(tag, 'c') or id < 10",
}

func TestRestrictCompiledMatchesInterpreted(t *testing.T) {
	r := bigRelation(t, 500)
	for _, src := range differentialPreds {
		pred := expr.MustParse(src)
		compiled, err := Restrict(r, pred)
		if err != nil {
			t.Fatalf("compiled restrict %q: %v", src, err)
		}
		var interpreted *Relation
		withInterpreter(t, func() {
			interpreted, err = Restrict(r, pred)
		})
		if err != nil {
			t.Fatalf("interpreted restrict %q: %v", src, err)
		}
		if got, want := relFingerprint(t, compiled), relFingerprint(t, interpreted); got != want {
			t.Errorf("restrict %q differs:\n  compiled    %.120s\n  interpreted %.120s", src, got, want)
		}
	}
}

func TestMapColumnCompiledMatchesInterpreted(t *testing.T) {
	r := bigRelation(t, 300)
	for _, src := range []string{"val * 2.0", "val + float(id % 5)", "score / 3.0"} {
		def := expr.MustParse(src)
		compiled, err := MapColumn(r, "val", def)
		if err != nil {
			t.Fatalf("compiled map %q: %v", src, err)
		}
		var interpreted *Relation
		withInterpreter(t, func() {
			interpreted, err = MapColumn(r, "val", def)
		})
		if err != nil {
			t.Fatalf("interpreted map %q: %v", src, err)
		}
		if got, want := relFingerprint(t, compiled), relFingerprint(t, interpreted); got != want {
			t.Errorf("map %q differs", src)
		}
	}
}

func TestPartitionCompiledMatchesInterpreted(t *testing.T) {
	r := bigRelation(t, 400)
	preds := []expr.Node{
		expr.MustParse("grp = 0"),
		expr.MustParse("val < 0.0"),
		expr.MustParse("id % 2 = 0"),
	}
	compiled, err := Partition(r, preds)
	if err != nil {
		t.Fatal(err)
	}
	var interpreted []*Relation
	withInterpreter(t, func() {
		interpreted, err = Partition(r, preds)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled) != len(interpreted) {
		t.Fatalf("partition counts differ: %d vs %d", len(compiled), len(interpreted))
	}
	for i := range compiled {
		if relFingerprint(t, compiled[i]) != relFingerprint(t, interpreted[i]) {
			t.Errorf("partition %d differs", i)
		}
	}
}

func TestJoinResidualCompiledMatchesInterpreted(t *testing.T) {
	l := bigRelation(t, 120)
	r := New("Dept", MustSchema(
		Column{Name: "did", Kind: types.Int},
		Column{Name: "bonus", Kind: types.Float},
	))
	for i := 0; i < 7; i++ {
		r.MustAppend([]types.Value{types.NewInt(int64(i)), types.NewFloat(float64(i) * 1500)})
	}
	pred := expr.MustParse("grp = did and val > bonus / 1000.0")
	for _, strat := range []JoinStrategy{JoinHash, JoinNestedLoop} {
		compiled, err := Join(l, r, pred, strat)
		if err != nil {
			t.Fatal(err)
		}
		var interpreted *Relation
		withInterpreter(t, func() {
			interpreted, err = Join(l, r, pred, strat)
		})
		if err != nil {
			t.Fatal(err)
		}
		if relFingerprint(t, compiled) != relFingerprint(t, interpreted) {
			t.Errorf("join strategy %d differs compiled vs interpreted", strat)
		}
	}
}

// FusedScan against the chain of individual operators it replaces: same
// schema, computed attributes, tuples, and provenance.
func TestFusedScanMatchesChain(t *testing.T) {
	r := bigRelation(t, 600)
	ops := []FusedOp{
		{Pred: expr.MustParse("val > -25.0")},
		{Project: []string{"id", "grp", "val"}},
		{Pred: expr.MustParse("id % 2 = 0 and grp != 3")},
	}
	want := r
	var err error
	if want, err = Restrict(want, ops[0].Pred); err != nil {
		t.Fatal(err)
	}
	if want, err = Project(want, ops[1].Project); err != nil {
		t.Fatal(err)
	}
	if want, err = Restrict(want, ops[2].Pred); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		res, err := FusedScan(r, ops, workers)
		if err != nil {
			t.Fatalf("fused scan (workers=%d): %v", workers, err)
		}
		if got := relFingerprint(t, res.Out); got != relFingerprint(t, want) {
			t.Errorf("fused scan (workers=%d) differs from chain", workers)
		}
		if len(res.Shapes) != len(ops) || res.Shapes[len(ops)-1] != res.Out {
			t.Fatalf("shapes misreported: %d entries", len(res.Shapes))
		}
	}

	// Interpreted fused scan (compilation off) agrees too.
	withInterpreter(t, func() {
		res, err := FusedScan(r, ops, 1)
		if err != nil {
			t.Fatal(err)
		}
		if relFingerprint(t, res.Out) != relFingerprint(t, want) {
			t.Error("interpreted fused scan differs from chain")
		}
	})
}

// Randomized fused-vs-chain property: random pipelines over random
// relations, fused output must match the operator chain exactly.
func TestFusedScanMatchesChainRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	preds := append([]string{}, differentialPreds...)
	projects := [][]string{
		{"id", "grp", "val", "tag"},
		{"id", "val", "grp"},
		{"val", "id"},
	}
	for trial := 0; trial < 30; trial++ {
		r := bigRelation(t, 100+rng.Intn(200))
		var ops []FusedOp
		steps := 1 + rng.Intn(4)
		cols := map[string]bool{"id": true, "grp": true, "val": true, "tag": true}
		for s := 0; s < steps; s++ {
			if rng.Intn(3) == 0 {
				// Project to a subset that still exists at this point.
				var pick []string
				for _, p := range projects[rng.Intn(len(projects))] {
					if cols[p] {
						pick = append(pick, p)
					}
				}
				if len(pick) == 0 {
					continue
				}
				ops = append(ops, FusedOp{Project: pick})
				cols = map[string]bool{}
				for _, p := range pick {
					cols[p] = true
				}
			} else {
				// Pick a predicate over columns that survived so far.
				var src string
				switch {
				case cols["val"] && cols["grp"] && cols["tag"]:
					src = preds[rng.Intn(len(preds))]
				case cols["val"]:
					src = "val * val > 100.0"
				default:
					src = "id < 150"
				}
				ops = append(ops, FusedOp{Pred: expr.MustParse(src)})
			}
		}
		if len(ops) == 0 {
			continue
		}
		want := r
		var err error
		for _, op := range ops {
			if op.Pred != nil {
				want, err = Restrict(want, op.Pred)
			} else {
				want, err = Project(want, op.Project)
			}
			if err != nil {
				t.Fatalf("trial %d chain: %v", trial, err)
			}
		}
		res, err := FusedScan(r, ops, 1+rng.Intn(4))
		if err != nil {
			t.Fatalf("trial %d fused: %v", trial, err)
		}
		if relFingerprint(t, res.Out) != relFingerprint(t, want) {
			t.Fatalf("trial %d: fused differs from chain (%d ops)", trial, len(ops))
		}
	}
}

func TestFusedScanStepErrors(t *testing.T) {
	r := bigRelation(t, 50)
	// Shape-time failure: unknown attribute in step 1.
	_, err := FusedScan(r, []FusedOp{
		{Pred: expr.MustParse("val > 0.0")},
		{Pred: expr.MustParse("nope = 1")},
	}, 1)
	var se *FusedStepError
	if err == nil {
		t.Fatal("bad predicate accepted")
	}
	if !asStepError(err, &se) || se.Step != 1 {
		t.Fatalf("error %v not attributed to step 1", err)
	}
	// Runtime failure: division by zero in step 0.
	_, err = FusedScan(r, []FusedOp{
		{Pred: expr.MustParse("id / (id - id) > 0")},
	}, 1)
	if err == nil {
		t.Fatal("erroring predicate succeeded")
	}
	if !asStepError(err, &se) || se.Step != 0 {
		t.Fatalf("runtime error %v not attributed to step 0", err)
	}
}

func asStepError(err error, out **FusedStepError) bool {
	for err != nil {
		if se, ok := err.(*FusedStepError); ok {
			*out = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Parallel scans must be byte-deterministic: many workers with a tiny
// chunk threshold produce exactly the serial output, run after run.
func TestParallelScanDeterminism(t *testing.T) {
	r := bigRelation(t, 2000)
	pred := expr.MustParse("score > 0.0 and id % 7 != 2")

	serial, err := Restrict(r, pred)
	if err != nil {
		t.Fatal(err)
	}
	want := relFingerprint(t, serial)

	prevW := SetScanWorkers(8)
	prevT := SetScanThreshold(1)
	defer func() {
		SetScanWorkers(prevW)
		SetScanThreshold(prevT)
	}()
	for i := 0; i < 5; i++ {
		par, err := Restrict(r, pred)
		if err != nil {
			t.Fatal(err)
		}
		if got := relFingerprint(t, par); got != want {
			t.Fatalf("parallel restrict run %d differs from serial", i)
		}
		mc, err := MapColumn(r, "val", expr.MustParse("val * 3.0"))
		if err != nil {
			t.Fatal(err)
		}
		mcs := relFingerprint(t, mc)
		res, err := FusedScan(r, []FusedOp{{Pred: pred}, {Project: []string{"id", "val"}}}, 8)
		if err != nil {
			t.Fatal(err)
		}
		fs := relFingerprint(t, res.Out)
		if i == 0 {
			t.Logf("rows: restrict=%d map=%d fused=%d", par.Len(), mc.Len(), res.Out.Len())
		}
		for j := 0; j < 2; j++ {
			mc2, _ := MapColumn(r, "val", expr.MustParse("val * 3.0"))
			if relFingerprint(t, mc2) != mcs {
				t.Fatal("parallel map column nondeterministic")
			}
			res2, _ := FusedScan(r, []FusedOp{{Pred: pred}, {Project: []string{"id", "val"}}}, 8)
			if relFingerprint(t, res2.Out) != fs {
				t.Fatal("parallel fused scan nondeterministic")
			}
		}
	}
}

// Parallel error determinism: the error surfaced must be the one the
// serial scan hits first, regardless of worker count.
func TestParallelScanErrorDeterminism(t *testing.T) {
	r := New("E", MustSchema(Column{Name: "a", Kind: types.Int}))
	for i := 0; i < 1000; i++ {
		r.MustAppend([]types.Value{types.NewInt(int64(i))})
	}
	// Fails for every a >= 700: first failing row is 700 in serial order.
	pred := expr.MustParse("if(a < 700, 1, a / 0) = 1")

	_, serialErr := Restrict(r, pred)
	if serialErr == nil {
		t.Fatal("expected serial error")
	}
	prevW := SetScanWorkers(8)
	prevT := SetScanThreshold(1)
	defer func() {
		SetScanWorkers(prevW)
		SetScanThreshold(prevT)
	}()
	for i := 0; i < 4; i++ {
		_, parErr := Restrict(r, pred)
		if parErr == nil {
			t.Fatal("expected parallel error")
		}
		if parErr.Error() != serialErr.Error() {
			t.Fatalf("parallel error %q differs from serial %q", parErr, serialErr)
		}
	}
}

// The join hash key must treat numerically-equal ints and floats as equal
// and keep every other kind distinct — replacing the old string key.
func TestValueKeyEquivalence(t *testing.T) {
	cases := []struct {
		a, b  types.Value
		equal bool
	}{
		{types.NewInt(3), types.NewFloat(3.0), true},
		{types.NewInt(3), types.NewFloat(3.5), false},
		{types.NewFloat(0.0), types.NewFloat(negZero()), true},
		{types.NewText("3"), types.NewInt(3), false},
		{types.NewText("a"), types.NewText("a"), true},
		{types.NewBool(true), types.NewInt(1), false},
		{types.NewDate(100), types.NewInt(100), false},
		{types.NewDate(100), types.NewDate(100), true},
		{types.Null, types.Null, true},
		{types.Null, types.NewInt(0), false},
	}
	for _, c := range cases {
		if got := keyOf(c.a) == keyOf(c.b); got != c.equal {
			t.Errorf("keyOf(%s) == keyOf(%s): got %v, want %v", c.a, c.b, got, c.equal)
		}
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

// TestMaterializedComputedMatchesInterpreted targets the materialization
// plan head-on: computed attributes referenced many times (directly and
// through other computed attributes) evaluate once per row in the
// compiled path, and a definition that fails at runtime must still read
// as null from its materialized slot, exactly as the interpreter's
// per-reference evaluation reports it.
func TestMaterializedComputedMatchesInterpreted(t *testing.T) {
	r := bigRelation(t, 400)
	// c1 over stored columns, c2 over c1, broken dividing by zero for
	// every row (a computed definition error evaluates to null).
	for _, c := range []struct{ name, def string }{
		{"c1", "val * val + float(grp)"},
		{"c2", "c1 * 0.5 + score"},
		{"broken", "val / (float(id) - float(id))"},
	} {
		if err := r.AddComputed(c.name, expr.MustParse(c.def)); err != nil {
			t.Fatal(err)
		}
	}
	preds := []string{
		// c1 appears five times per row: twice directly, twice through c2,
		// once through c2 again on the right.
		"c1 > 0.0 and c2 + c1 < 500.0 or c2 - c1 * 0.25 > 10.0",
		// A null-valued computed (broken) collapses comparisons to null.
		"broken > 0.0 or c1 < 100.0",
		"c2 * c2 > c1 + score",
	}
	for _, src := range preds {
		pred := expr.MustParse(src)
		compiled, err := Restrict(r, pred)
		if err != nil {
			t.Fatalf("compiled restrict %q: %v", src, err)
		}
		var interpreted *Relation
		withInterpreter(t, func() {
			interpreted, err = Restrict(r, pred)
		})
		if err != nil {
			t.Fatalf("interpreted restrict %q: %v", src, err)
		}
		if got, want := relFingerprint(t, compiled), relFingerprint(t, interpreted); got != want {
			t.Errorf("restrict %q differs:\n  compiled    %.120s\n  interpreted %.120s", src, got, want)
		}
	}

	// The same predicates through a fused scan sharing one
	// materialization plan across steps, against the unfused interpreted
	// chain.
	ops := []FusedOp{
		{Pred: expr.MustParse(preds[0])},
		{Project: []string{"id", "grp", "val"}},
		{Pred: expr.MustParse("c1 + c2 < 900.0 and c1 * 2.0 > -100.0")},
	}
	res, err := FusedScan(r, ops, 1)
	if err != nil {
		t.Fatalf("fused scan: %v", err)
	}
	var want *Relation
	withInterpreter(t, func() {
		s1, err := Restrict(r, ops[0].Pred)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Project(s1, ops[1].Project)
		if err != nil {
			t.Fatal(err)
		}
		want, err = Restrict(s2, ops[2].Pred)
		if err != nil {
			t.Fatal(err)
		}
	})
	if got, wantFP := relFingerprint(t, res.Out), relFingerprint(t, want); got != wantFP {
		t.Errorf("fused scan differs:\n  compiled    %.120s\n  interpreted %.120s", got, wantFP)
	}
}
