package rel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// chunkCache is the process-wide bounded-memory manager for cache-
// managed chunk slots (slots backed by a ChunkSource). It is global for
// the same reason genCounter is: relation versions sharing slots span
// databases and sessions, and the memory quota is a property of the
// process, not of any one table.
//
// Accounting discipline: a fault evicts FIRST and inserts after, under
// one lock hold, so resident never exceeds the quota at any observable
// instant (the sole exception — a single chunk larger than the whole
// quota — still loads, because the cache must make progress; callers
// pick quotas comfortably above the chunk size). Recency is fault
// order: resident-chunk hits in colStore.chunk bypass the cache
// entirely via the slot's atomic pointer, keeping reads lock-free.
//
// Pinned slots (freshly appended or updated chunks, which have no
// source to refault from) are invisible to the cache: they are live
// table data, not reconstructable cache state.
type chunkCache struct {
	mu       sync.Mutex
	quota    int64 // 0 = unbounded
	resident int64
	peak     int64
	pressure bool // inside a quota crossing; gates once-per-crossing warnings

	head, tail *chunkSlot // LRU list: head = most recently faulted

	loads, evictions, warnings int64
}

// DefaultMemoryQuota bounds cache-managed chunk memory out of the box.
// Without a bound the LRU list would keep every faulted chunk alive for
// the life of the process — including columnar views of relations long
// since dropped — so "unbounded" (quota 0) is an explicit opt-in.
const DefaultMemoryQuota int64 = 256 << 20

var globalChunkCache = newChunkCacheState()

// quotaValue mirrors the quota for lock-free reads in stats.
var quotaValue atomic.Int64

func newChunkCacheState() *chunkCache {
	quotaValue.Store(DefaultMemoryQuota)
	return &chunkCache{quota: DefaultMemoryQuota}
}

// SetMemoryQuota bounds the bytes of cache-managed chunk storage kept
// resident; 0 removes the bound. Lowering the quota evicts immediately.
func SetMemoryQuota(bytes int64) {
	cc := globalChunkCache
	cc.mu.Lock()
	cc.quota = bytes
	quotaValue.Store(bytes)
	cc.pressure = false
	if bytes > 0 && cc.resident > bytes {
		cc.evictLocked(bytes, nil)
	}
	cc.mu.Unlock()
}

// MemoryQuota returns the current quota (0 = unbounded).
func MemoryQuota() int64 { return quotaValue.Load() }

// CacheStats is a snapshot of the chunk cache's accounting, the
// authority the bounded-memory tests and bench gates assert against
// (obs counters mirror it for the telemetry endpoints).
type CacheStats struct {
	Quota         int64
	Resident      int64
	Peak          int64 // high-water resident since the last reset
	Loads         int64
	Evictions     int64
	QuotaWarnings int64
}

// ChunkCacheStats returns current cache accounting.
func ChunkCacheStats() CacheStats {
	cc := globalChunkCache
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return CacheStats{
		Quota:         cc.quota,
		Resident:      cc.resident,
		Peak:          cc.peak,
		Loads:         cc.loads,
		Evictions:     cc.evictions,
		QuotaWarnings: cc.warnings,
	}
}

// ResetChunkCacheStats zeroes the load/eviction/warning counters and
// re-bases the peak at the current resident size.
func ResetChunkCacheStats() {
	cc := globalChunkCache
	cc.mu.Lock()
	cc.loads, cc.evictions, cc.warnings = 0, 0, 0
	cc.peak = cc.resident
	cc.pressure = false
	cc.mu.Unlock()
}

// DropResidentChunks evicts every cache-managed chunk, forcing the next
// reads to refault from their sources. Tests use it to prove reloads
// are byte-identical; it is also a reasonable response to an external
// memory-pressure signal.
func DropResidentChunks() {
	cc := globalChunkCache
	cc.mu.Lock()
	cc.evictLocked(0, nil)
	cc.mu.Unlock()
}

// fault loads the slot's chunk from its source, charging the quota and
// evicting colder chunks as needed. Concurrent faults of one slot may
// both read from the source, but only the first charges the cache; the
// loser adopts the winner's chunk.
func (cc *chunkCache) fault(s *chunkSlot) (*Chunk, error) {
	if s.src == nil {
		return nil, fmt.Errorf("rel: pinned chunk slot has no resident chunk")
	}
	c, err := s.src.ReadChunk(s.idx)
	if err != nil {
		return nil, fmt.Errorf("rel: loading chunk %d: %w", s.idx, err)
	}
	bytes := c.Bytes()

	cc.mu.Lock()
	if cur := s.res.Load(); cur != nil {
		cc.mu.Unlock()
		return cur, nil
	}
	if cc.quota > 0 && cc.resident+bytes > cc.quota {
		if !cc.pressure {
			cc.pressure = true
			cc.warnings++
			obs.Inc(obs.RelQuotaWarnings)
		}
		cc.evictLocked(cc.quota-bytes, s)
	} else {
		cc.pressure = false
	}
	s.res.Store(c)
	s.resBytes = bytes
	cc.pushLocked(s)
	cc.resident += bytes
	if cc.resident > cc.peak {
		cc.peak = cc.resident
	}
	cc.loads++
	obs.Inc(obs.RelChunkLoads)
	obs.Add(obs.RelResidentBytes, bytes)
	cc.mu.Unlock()
	return c, nil
}

// evictLocked drops least-recently-faulted slots (skipping keep) until
// resident ≤ target. A negative target evicts everything evictable.
func (cc *chunkCache) evictLocked(target int64, keep *chunkSlot) {
	s := cc.tail
	for s != nil && cc.resident > target {
		prev := s.lruPrev
		if s != keep {
			s.res.Store(nil)
			cc.resident -= s.resBytes
			cc.evictions++
			obs.Inc(obs.RelChunkEvictions)
			obs.Add(obs.RelResidentBytes, -s.resBytes)
			cc.removeLocked(s)
			s.resBytes = 0
		}
		s = prev
	}
}

// pushLocked inserts s at the head (most recent) of the LRU list.
func (cc *chunkCache) pushLocked(s *chunkSlot) {
	if s.inCache {
		cc.removeLocked(s)
	}
	s.inCache = true
	s.lruPrev = nil
	s.lruNext = cc.head
	if cc.head != nil {
		cc.head.lruPrev = s
	}
	cc.head = s
	if cc.tail == nil {
		cc.tail = s
	}
}

// removeLocked unlinks s from the LRU list.
func (cc *chunkCache) removeLocked(s *chunkSlot) {
	if !s.inCache {
		return
	}
	if s.lruPrev != nil {
		s.lruPrev.lruNext = s.lruNext
	} else {
		cc.head = s.lruNext
	}
	if s.lruNext != nil {
		s.lruNext.lruPrev = s.lruPrev
	} else {
		cc.tail = s.lruPrev
	}
	s.lruPrev, s.lruNext = nil, nil
	s.inCache = false
}
