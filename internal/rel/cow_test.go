package rel

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

func cowRel(t testing.TB) *Relation {
	t.Helper()
	r := New("C", MustSchema(
		Column{Name: "id", Kind: types.Int},
		Column{Name: "x", Kind: types.Float},
	))
	for i := 0; i < 8; i++ {
		r.MustAppend([]types.Value{types.NewInt(int64(i)), types.NewFloat(float64(i) / 2)})
	}
	if err := r.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	def, err := expr.Parse("x * 2.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddComputed("x2", def); err != nil {
		t.Fatal(err)
	}
	return r
}

// freeze captures every visible value of a relation so tests can assert
// that a snapshot never moves.
func freeze(r *Relation) [][]types.Value {
	out := make([][]types.Value, r.Len())
	for i := range out {
		out[i] = append([]types.Value(nil), r.Tuple(i)...)
	}
	return out
}

func assertFrozen(t *testing.T, r *Relation, want [][]types.Value) {
	t.Helper()
	if r.Len() != len(want) {
		t.Fatalf("snapshot length moved: %d, want %d", r.Len(), len(want))
	}
	for i, row := range want {
		got := r.Tuple(i)
		for j, v := range row {
			eq, err := got[j].Compare(v)
			if err != nil || eq != 0 {
				t.Fatalf("snapshot row %d col %d moved: %v, want %v", i, j, got[j], v)
			}
		}
	}
}

func TestCowCloneUpdateInvisibleToOriginal(t *testing.T) {
	orig := cowRel(t)
	before := freeze(orig)
	origGen := orig.Generation()

	next := orig.CowClone()
	if err := next.Update(3, "x", types.NewFloat(99)); err != nil {
		t.Fatal(err)
	}
	assertFrozen(t, orig, before)
	if orig.Generation() != origGen {
		t.Fatalf("original generation moved from %d to %d", origGen, orig.Generation())
	}
	if got := next.Tuple(3)[1].Float(); got != 99 {
		t.Fatalf("clone did not take the update: %v", got)
	}
	if next.Generation() == origGen {
		t.Fatal("clone shares the original's generation after mutation")
	}
}

func TestCowCloneAppendInvisibleToOriginal(t *testing.T) {
	orig := cowRel(t)
	before := freeze(orig)

	next := orig.CowClone()
	next.MustAppend([]types.Value{types.NewInt(100), types.NewFloat(1)})
	assertFrozen(t, orig, before)
	if next.Len() != orig.Len()+1 {
		t.Fatalf("clone length %d, want %d", next.Len(), orig.Len()+1)
	}
}

func TestCowCloneIndexesIndependent(t *testing.T) {
	orig := cowRel(t)
	next := orig.CowClone()
	if err := next.Update(0, "id", types.NewInt(500)); err != nil {
		t.Fatal(err)
	}
	next.MustAppend([]types.Value{types.NewInt(600), types.NewFloat(0)})

	oidx, ok := orig.Index("id")
	if !ok {
		t.Fatal("original lost its index")
	}
	if rows := oidx.Get(types.NewInt(0)); len(rows) != 1 || rows[0] != 0 {
		t.Fatalf("original index for key 0 = %v, want [0]", rows)
	}
	if rows := oidx.Get(types.NewInt(500)); rows != nil {
		t.Fatalf("clone's update leaked into original index: %v", rows)
	}
	if rows := oidx.Get(types.NewInt(600)); rows != nil {
		t.Fatalf("clone's append leaked into original index: %v", rows)
	}
	nidx, _ := next.Index("id")
	if rows := nidx.Get(types.NewInt(500)); len(rows) != 1 {
		t.Fatalf("clone index missed the update: %v", rows)
	}
}

func TestCowCloneComputedIndependent(t *testing.T) {
	orig := cowRel(t)
	next := orig.CowClone()
	def, err := expr.Parse("x + 1.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := next.SetComputed("x2", def); err != nil {
		t.Fatal(err)
	}
	// The original still evaluates the old definition.
	if got := orig.Row(2).Attr("x2").Float(); got != 2.0 {
		t.Fatalf("original computed x2 = %v, want 2.0 (x*2 at x=1)", got)
	}
	if got := next.Row(2).Attr("x2").Float(); got != 2.0 {
		t.Fatalf("clone computed x2 = %v, want 2.0 (x+1 at x=1)", got)
	}
}

func TestCowClonePreservesProvenance(t *testing.T) {
	orig := cowRel(t)
	sub, err := Restrict(orig, expr.MustParse("id >= 4"))
	if err != nil {
		t.Fatal(err)
	}
	clone := sub.CowClone()
	base, row := clone.BaseRow(0)
	if base != orig || row != 4 {
		t.Fatalf("BaseRow(0) = (%v, %d), want (orig, 4)", base.Name(), row)
	}
}
