package rel

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/types"
)

// FusedScan executes an adjacent Restrict/Project chain as one pass over
// the source relation — no intermediate relations, one (optionally
// chunk-parallel) row scan — producing exactly the relation the unfused
// chain would: same schema, computed attributes, tuples, and provenance.
// The dataflow evaluator's plan-time fusion pass (internal/dataflow's
// fuse.go) is its only intended caller, but it is independently testable
// against the unfused operators.
//
// The one observable difference from the unfused chain is error
// attribution when several rows fail: the unfused chain runs step-major
// (every row through step 1, then step 2), a fused scan runs row-major,
// so with predicate errors on multiple steps a different step may report
// first. Whether an error occurs at all is identical.

// FusedOp is one step of a fused scan: a restriction (Pred non-nil) or a
// projection (Project non-nil). Exactly one field is set.
type FusedOp struct {
	Pred    expr.Node
	Project []string
}

// FusedStepError attributes a fused-scan failure to the step that raised
// it, so the dataflow layer can blame the same box an unfused chain would.
type FusedStepError struct {
	Step int
	Err  error
}

// Error implements the error interface.
func (e *FusedStepError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying step error.
func (e *FusedStepError) Unwrap() error { return e.Err }

// FusedResult is a fused scan's output. Shapes holds one relation per
// step with the schema and computed attributes that step's unfused output
// would have — the last entry is Out itself, the earlier ones are empty
// shells the dataflow layer replays display-metadata derivation over
// (rederive reads only attribute names and kinds, never tuples).
type FusedResult struct {
	Out    *Relation
	Shapes []*Relation
}

// fusedPred is one compiled (or interpreted) restriction of the pipeline,
// bound to the shape it was checked against and the mapping from that
// shape's stored columns to the source relation's tuple ordinals.
type fusedPred struct {
	step     int
	node     expr.Node
	compiled *expr.CompiledPredicate
	shape    *Relation
	colMap   []int
}

// mappedScope resolves a shape's attribute names to ordinals in the
// SOURCE tuple layout, which is what a fused scan's predicates run over.
// Computed attributes in mat resolve to their materialized slot past the
// source columns (the scan shares one matPlan across every step — a
// stored column's source ordinal is invariant across shapes, so one
// extended row serves all predicates).
type mappedScope struct {
	shape  *Relation
	colMap []int
	mat    map[string]int
}

// ResolveAttr implements expr.CompileScope.
func (s mappedScope) ResolveAttr(name string) (int, expr.Node, bool) {
	if i := s.shape.schema.Index(name); i >= 0 {
		return s.colMap[i], nil, true
	}
	if j, ok := s.mat[name]; ok {
		return j, nil, true
	}
	for _, c := range s.shape.computed {
		if c.Name == name {
			return -1, c.Expr, true
		}
	}
	return -1, nil, false
}

// mappedCursor is the interpreted counterpart of mappedScope: an expr.Env
// reading one source row through a step's shape. When tup is set it is
// read instead of src.tuples[row] — the delta path evaluates tuples that
// are not (or not yet) the relation's current row content.
type mappedCursor struct {
	src *Relation
	fp  *fusedPred
	row int
	tup []types.Value
}

// AttrValue implements expr.Env.
func (m *mappedCursor) AttrValue(name string) (types.Value, bool) {
	if i := m.fp.shape.schema.Index(name); i >= 0 {
		if m.tup != nil {
			return m.tup[m.fp.colMap[i]], true
		}
		return m.src.storedValue(m.row, m.fp.colMap[i]), true
	}
	for _, c := range m.fp.shape.computed {
		if c.Name == name {
			v, err := expr.Eval(c.Expr, m)
			if err != nil {
				return types.Null, true
			}
			return v, true
		}
	}
	return types.Null, false
}

// FusedScan runs the pipeline over r with up to workers scan workers
// (0 inherits the package scan-worker setting). Errors carry the failing
// step as a *FusedStepError.
func FusedScan(r *Relation, ops []FusedOp, workers int) (*FusedResult, error) {
	return FusedScanCtx(context.Background(), r, ops, workers)
}

// FusedScanCtx is FusedScan attributed to the request carried by ctx:
// the scan records a rel.fused_scan span (parented under the firing that
// invoked it) with a rel.compile.pass child covering the shape-check and
// predicate-compilation phase. The compile pass runs — and so records —
// in both the compiled and interpreted modes, keeping trace structure
// identical across the ablation.
func FusedScanCtx(ctx context.Context, r *Relation, ops []FusedOp, workers int) (*FusedResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("rel: fused scan: empty pipeline")
	}
	var sp *obs.Span
	if obs.Recording() {
		ctx, sp = obs.StartSpanCtx(ctx, obs.SpanRelFusedScan,
			"steps", strconv.Itoa(len(ops)), "rows_in", strconv.Itoa(r.Len()))
	}
	res, err := fusedScan(ctx, r, ops, workers)
	if err == nil {
		sp.Annotate("rows_out", strconv.Itoa(len(res.Out.tuples)))
	}
	sp.End()
	return res, err
}

// fusedShape is the result of a fused pipeline's shape pass over a source
// relation: the per-step output shapes, the final stored-column mapping
// back to source ordinals, and the checked (and, when enabled, compiled)
// predicates bound to their shapes. FusedScan's row pass consumes it; the
// incremental path (FusedDelta) reuses it to evaluate single rows.
type fusedShape struct {
	shape       *Relation   // final output shape (schema + surviving computed attrs)
	shapes      []*Relation // per-step shapes, last == shape
	colMap      []int       // final stored column -> source tuple ordinal
	preds       []*fusedPred
	matp        *matPlan
	anyCompiled bool
	identity    bool // output columns are the source columns in place
}

// fusedShapePass replays the schema and computed-attribute derivations the
// unfused operators would perform, tracking for every surviving stored
// column its ordinal in r's tuples. Checking and compiling happen here,
// once, in step order — the same order the unfused chain would report a
// bad predicate or projection in.
func fusedShapePass(ctx context.Context, r *Relation, ops []FusedOp) (*fusedShape, error) {
	shape := &Relation{schema: r.schema, computed: r.computed}
	colMap := make([]int, r.schema.Len())
	for i := range colMap {
		colMap[i] = i
	}
	var matp *matPlan
	var mat map[string]int
	shapes := make([]*Relation, len(ops))
	var preds []*fusedPred
	if err := func() error {
		var csp *obs.Span
		if obs.Recording() {
			_, csp = obs.StartSpanCtx(ctx, obs.SpanRelCompile)
		}
		defer csp.End()
		// One materialization plan for every computed attribute any
		// predicate references, evaluated once per source row and shared by
		// all steps (compiled predicates read the extended slots instead of
		// re-walking the definitions per reference).
		if !compileOff.Load() {
			var prednodes []expr.Node
			for _, op := range ops {
				if op.Pred != nil {
					prednodes = append(prednodes, op.Pred)
				}
			}
			matp, mat = r.buildMat(prednodes...)
		}
		for i, op := range ops {
			switch {
			case op.Pred != nil:
				if err := expr.CheckPredicate(op.Pred, shape); err != nil {
					return &FusedStepError{Step: i, Err: err}
				}
				fp := &fusedPred{step: i, node: op.Pred, shape: shape, colMap: colMap}
				if !compileOff.Load() {
					if cp, err := expr.CompilePredicate(op.Pred, mappedScope{shape: shape, colMap: colMap, mat: mat}); err == nil {
						obs.Inc(obs.RelCompile)
						fp.compiled = cp
					}
				}
				preds = append(preds, fp)
				shape = shape.derive(shape.schema, true)
			case op.Project != nil:
				ns, err := shape.schema.project(op.Project)
				if err != nil {
					return &FusedStepError{Step: i, Err: err}
				}
				nm := make([]int, len(op.Project))
				for j, name := range op.Project {
					nm[j] = colMap[shape.schema.Index(name)]
				}
				shape = shape.derive(ns, true)
				colMap = nm
			default:
				return &FusedStepError{Step: i, Err: fmt.Errorf("rel: fused scan: step %d is neither restrict nor project", i)}
			}
			shapes[i] = shape
		}
		return nil
	}(); err != nil {
		return nil, err
	}
	sh := &fusedShape{shape: shape, shapes: shapes, colMap: colMap, preds: preds, matp: matp}
	for _, fp := range preds {
		if fp.compiled != nil {
			sh.anyCompiled = true
		}
	}
	sh.identity = len(colMap) == r.schema.Len()
	for i, ci := range colMap {
		if ci != i {
			sh.identity = false
			break
		}
	}
	return sh, nil
}

// evalRow runs every predicate of the pipeline over one source tuple,
// returning whether it survives. tup must have the source relation's
// stored arity; row is its ordinal in src (used by the interpreted path
// for error parity and by provenance). The scratch slice is reused across
// calls.
func (sh *fusedShape) evalRow(src *Relation, row int, tup []types.Value, scratch []types.Value) (bool, []types.Value, error) {
	ext := tup
	if sh.matp != nil && sh.anyCompiled {
		scratch = sh.matp.extend(tup, scratch)
		ext = scratch
	}
	for _, fp := range sh.preds {
		var ok bool
		var err error
		if fp.compiled != nil {
			ok, err = fp.compiled.Eval(ext)
		} else {
			cur := &mappedCursor{src: src, fp: fp, row: row, tup: tup}
			ok, err = expr.EvalPredicate(fp.node, cur)
		}
		if err != nil {
			return false, scratch, &FusedStepError{Step: fp.step, Err: fmt.Errorf("rel: restrict: %w", err)}
		}
		if !ok {
			return false, scratch, nil
		}
	}
	return true, scratch, nil
}

// projectRow maps one surviving source tuple into the output layout. With
// an identity column map the source tuple is shared, exactly like the full
// scan.
func (sh *fusedShape) projectRow(tup []types.Value) []types.Value {
	if sh.identity {
		return tup
	}
	nt := make([]types.Value, len(sh.colMap))
	for j, ci := range sh.colMap {
		nt[j] = tup[ci]
	}
	return nt
}

func fusedScan(ctx context.Context, r *Relation, ops []FusedOp, workers int) (*FusedResult, error) {
	sh, err := fusedShapePass(ctx, r, ops)
	if err != nil {
		return nil, err
	}
	shape, colMap, preds, matp := sh.shape, sh.colMap, sh.preds, sh.matp
	shapes, anyCompiled := sh.shapes, sh.anyCompiled

	// Row pass: every predicate over every surviving row, in step order
	// per row, over the original tuples. Chunks are contiguous, so
	// concatenating their keep-lists reproduces the serial row order.
	obs.Inc(obs.RelFusedScans)
	n := r.Len()
	rows, kernOK, err := kernelFusedRows(r, sh, workers)
	if err != nil {
		return nil, err
	}
	if !kernOK {
		chunks := scanChunks(n, workers)
		chunkRows := make([][]int, chunks)
		err = runChunks(n, chunks, func(c, lo, hi int) error {
			keep := make([]int, 0, (hi-lo)/4+8)
			var cur *mappedCursor
			var scratch []types.Value
			rd := r.reader()
			for i := lo; i < hi; i++ {
				ext := rd.at(i)
				if matp != nil && anyCompiled {
					scratch = matp.extend(ext, scratch)
					ext = scratch
				}
				pass := true
				for _, fp := range preds {
					var ok bool
					var err error
					if fp.compiled != nil {
						ok, err = fp.compiled.Eval(ext)
					} else {
						if cur == nil {
							cur = &mappedCursor{src: r}
						}
						cur.fp, cur.row, cur.tup = fp, i, nil
						ok, err = expr.EvalPredicate(fp.node, cur)
					}
					if err != nil {
						return &FusedStepError{Step: fp.step, Err: fmt.Errorf("rel: restrict: %w", err)}
					}
					if !ok {
						pass = false
						break
					}
				}
				if pass {
					keep = append(keep, i)
				}
			}
			if err := rd.Err(); err != nil {
				return fmt.Errorf("rel: fused scan: %w", err)
			}
			chunkRows[c] = keep
			return nil
		})
		if err != nil {
			return nil, err
		}

		total := 0
		for _, rs := range chunkRows {
			total += len(rs)
		}
		rows = make([]int, 0, total)
		for _, rs := range chunkRows {
			rows = append(rows, rs...)
		}
	}

	// Materialize the final relation into the last shape. When every
	// source column survives in place the output shares tuple storage with
	// the input, exactly like an unfused Restrict.
	out := shape
	identity := len(colMap) == r.schema.Len()
	for i, ci := range colMap {
		if ci != i {
			identity = false
			break
		}
	}
	out.tuples = make([][]types.Value, len(rows))
	rd := r.reader()
	if identity {
		for i, row := range rows {
			out.tuples[i] = rd.take(row)
		}
	} else {
		for i, row := range rows {
			src := rd.at(row)
			nt := make([]types.Value, len(colMap))
			for j, ci := range colMap {
				nt[j] = src[ci]
			}
			out.tuples[i] = nt
		}
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("rel: fused scan: %w", err)
	}
	out.setProv(r, rows)
	return &FusedResult{Out: out, Shapes: shapes}, nil
}
