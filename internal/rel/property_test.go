package rel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/types"
)

// randomRelation builds a relation with mixed column types and n rows
// from a seed.
func randomRelation(n int, seed int64) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := New("Rand", MustSchema(
		Column{Name: "k", Kind: types.Int},
		Column{Name: "v", Kind: types.Float},
		Column{Name: "tag", Kind: types.Text},
	))
	tags := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		r.MustAppend([]types.Value{
			types.NewInt(int64(rng.Intn(50))),
			types.NewFloat(rng.Float64()*100 - 50),
			types.NewText(tags[rng.Intn(len(tags))]),
		})
	}
	return r
}

// Property: Restrict keeps exactly the tuples satisfying the predicate,
// in input order.
func TestRestrictSoundComplete(t *testing.T) {
	pred := expr.MustParse("v > 0.0 and k < 25")
	f := func(seed int64, size uint8) bool {
		r := randomRelation(int(size), seed)
		out, err := Restrict(r, pred)
		if err != nil {
			return false
		}
		// Model: scan.
		want := 0
		j := 0
		for i := 0; i < r.Len(); i++ {
			keep, err := expr.EvalPredicate(pred, r.Row(i))
			if err != nil {
				return false
			}
			if keep {
				want++
				// Order preserved.
				if j >= out.Len() || !out.Tuple(j)[0].Equal(r.Tuple(i)[0]) {
					return false
				}
				j++
			}
		}
		return out.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Partition is disjoint and, with a catch-all, complete.
func TestPartitionDisjointComplete(t *testing.T) {
	preds := []expr.Node{
		expr.MustParse("tag = 'a'"),
		expr.MustParse("tag = 'b'"),
		expr.MustParse("true"),
	}
	f := func(seed int64, size uint8) bool {
		r := randomRelation(int(size), seed)
		parts, err := Partition(r, preds)
		if err != nil {
			return false
		}
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		if total != r.Len() {
			return false
		}
		// Disjoint: 'a' tuples only in part 0, and part 2 has no a or b.
		for i := 0; i < parts[2].Len(); i++ {
			tag := parts[2].Row(i).Attr("tag").Text()
			if tag == "a" || tag == "b" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Sort is a permutation ordered by the key.
func TestSortPermutationProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := randomRelation(int(size)+1, seed)
		out, err := Sort(r, "v", false)
		if err != nil {
			return false
		}
		if out.Len() != r.Len() {
			return false
		}
		prev := out.Row(0).Attr("v").Float()
		sum := 0.0
		for i := 0; i < out.Len(); i++ {
			v := out.Row(i).Attr("v").Float()
			if v < prev {
				return false
			}
			prev = v
			sum += v
		}
		orig := 0.0
		for i := 0; i < r.Len(); i++ {
			orig += r.Row(i).Attr("v").Float()
		}
		// Same multiset (sum as a cheap witness plus length).
		return abs(sum-orig) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: hash join and nested-loop join agree on equi-joins.
func TestJoinStrategiesAgree(t *testing.T) {
	pred := expr.MustParse("k = k2")
	f := func(seedA, seedB int64, sizeA, sizeB uint8) bool {
		a := randomRelation(int(sizeA)%40, seedA)
		// Second relation with a renamed key column so the predicate is
		// unambiguous.
		rng := rand.New(rand.NewSource(seedB))
		b := New("B", MustSchema(
			Column{Name: "k2", Kind: types.Int},
			Column{Name: "w", Kind: types.Float},
		))
		for i := 0; i < int(sizeB)%40; i++ {
			b.MustAppend([]types.Value{
				types.NewInt(int64(rng.Intn(50))),
				types.NewFloat(rng.Float64()),
			})
		}
		h, err1 := Join(a, b, pred, JoinHash)
		n, err2 := Join(a, b, pred, JoinNestedLoop)
		if err1 != nil || err2 != nil {
			return false
		}
		return h.Len() == n.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: indexed Restrict equals scan Restrict for every comparison
// operator.
func TestIndexedRestrictMatchesScan(t *testing.T) {
	f := func(seed int64, size uint8, boundRaw uint8) bool {
		n := int(size)%60 + 1
		scanRel := randomRelation(n, seed)
		idxRel := randomRelation(n, seed)
		if err := idxRel.CreateIndex("k"); err != nil {
			return false
		}
		bound := int64(boundRaw) % 50
		for _, op := range []string{"=", "<", "<=", ">", ">="} {
			pred := &expr.Binary{
				Op: op,
				L:  &expr.Ref{Name: "k"},
				R:  &expr.Lit{Val: types.NewInt(bound)},
			}
			a, err1 := Restrict(scanRel, pred)
			b, err2 := Restrict(idxRel, pred)
			if err1 != nil || err2 != nil || a.Len() != b.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: provenance always points at the true originating tuple.
func TestProvenanceProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := randomRelation(int(size)%50+5, seed)
		restricted, err := Restrict(r, expr.MustParse("v > -10.0"))
		if err != nil {
			return false
		}
		sorted, err := Sort(restricted, "k", true)
		if err != nil {
			return false
		}
		sampled, err := Sample(sorted, 0.7, seed)
		if err != nil {
			return false
		}
		for i := 0; i < sampled.Len(); i++ {
			base, row := sampled.BaseRow(i)
			if base != r {
				return false
			}
			// The traced tuple must be identical.
			for j := range sampled.Tuple(i) {
				if !sampled.Tuple(i)[j].Equal(r.Tuple(row)[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
