package rel

import (
	"fmt"
	"sync/atomic"

	"repro/internal/types"
)

// ChunkSource supplies the chunks of one relation's columnar storage.
// Implementations must be safe for concurrent ReadChunk calls and must
// return byte-identical chunk contents on every read of the same index —
// the chunk cache relies on that to evict and refault freely.
type ChunkSource interface {
	// NumChunks returns how many chunks the source holds.
	NumChunks() int
	// ChunkRows returns the nominal rows-per-chunk (the last chunk may
	// be shorter).
	ChunkRows() int
	// Rows returns the total row count.
	Rows() int
	// ReadChunk loads chunk i.
	ReadChunk(i int) (*Chunk, error)
}

// chunkSlot is one chunk position of a colStore. res holds the resident
// chunk, or nil when evicted. Slots with a source are cache-managed:
// the bounded chunk cache may clear res and refault it from src later.
// Slots without a source (freshly written or mutated chunks) are pinned
// resident for the lifetime of the store versions that reference them.
//
// Slots are shared freely between relation versions — CowClone copies
// the slot-pointer slice — which is safe because the only mutable field
// is the resident pointer, and loading/evicting never changes the
// chunk's logical contents.
type chunkSlot struct {
	res atomic.Pointer[Chunk]
	src ChunkSource // nil = pinned resident
	idx int         // chunk index within src

	// LRU bookkeeping, owned by the chunk cache mutex.
	lruPrev, lruNext *chunkSlot
	inCache          bool
	resBytes         int64
}

// pinnedSlot wraps a resident-only chunk in a slot.
func pinnedSlot(c *Chunk) *chunkSlot {
	s := &chunkSlot{}
	s.res.Store(c)
	return s
}

// colStore is the columnar storage of one relation version: an ordered
// slice of chunk slots over a fixed schema. Stores are immutable —
// mutation helpers return a new store sharing all untouched slots, which
// is exactly the CoW discipline Relation already applies to its row
// storage.
type colStore struct {
	schema    *Schema
	slots     []*chunkSlot
	rows      int
	chunkRows int
}

// newColStore wires a store directly onto a chunk source with all slots
// evicted; chunks fault in lazily through the chunk cache.
func newColStore(schema *Schema, src ChunkSource) *colStore {
	cs := &colStore{schema: schema, rows: src.Rows(), chunkRows: src.ChunkRows()}
	n := src.NumChunks()
	cs.slots = make([]*chunkSlot, n)
	for i := 0; i < n; i++ {
		cs.slots[i] = &chunkSlot{src: src, idx: i}
	}
	return cs
}

// buildColStore encodes row-major tuples into a store whose slots fault
// lazily from the tuple slice itself: nothing is encoded until a kernel
// first touches a chunk, and encoded chunks are evictable because the
// rows remain the ground truth.
func buildColStore(schema *Schema, tuples [][]types.Value, chunkRows int) *colStore {
	src := &rowChunkSource{schema: schema, tuples: tuples, chunkRows: chunkRows}
	return newColStore(schema, src)
}

// numChunks returns the slot count.
func (cs *colStore) numChunks() int { return len(cs.slots) }

// chunkSpan returns the [lo, hi) row range of chunk i.
func (cs *colStore) chunkSpan(i int) (lo, hi int) {
	lo = i * cs.chunkRows
	hi = lo + cs.chunkRows
	if hi > cs.rows {
		hi = cs.rows
	}
	return lo, hi
}

// rowChunk maps a row id to (chunk index, offset).
func (cs *colStore) rowChunk(row int) (ci, off int) {
	return row / cs.chunkRows, row % cs.chunkRows
}

// chunk returns chunk i, faulting it in through the bounded chunk cache
// if evicted. The returned chunk stays valid for as long as the caller
// holds the pointer, even if the cache evicts the slot meanwhile.
func (cs *colStore) chunk(i int) (*Chunk, error) {
	s := cs.slots[i]
	if c := s.res.Load(); c != nil {
		return c, nil
	}
	return globalChunkCache.fault(s)
}

// value reads a single value without materializing the row.
func (cs *colStore) value(row, col int) (types.Value, error) {
	ci, off := cs.rowChunk(row)
	c, err := cs.chunk(ci)
	if err != nil {
		return types.Null, err
	}
	return c.Value(col, off), nil
}

// withAppend returns a new store with tuple appended. The tail chunk is
// rebuilt copy-on-write (or a fresh chunk started when the tail is
// full); all other slots are shared. The new tail has no source — it
// diverged from any segment backing — so it stays pinned resident.
func (cs *colStore) withAppend(tuple []types.Value) (*colStore, error) {
	out := &colStore{schema: cs.schema, chunkRows: cs.chunkRows, rows: cs.rows + 1}
	n := len(cs.slots)
	tailRows := cs.rows - (n-1)*cs.chunkRows
	if n == 0 || tailRows >= cs.chunkRows {
		// Start a fresh tail chunk.
		c, err := encodeRows(cs.schema, [][]types.Value{tuple})
		if err != nil {
			return nil, err
		}
		out.slots = make([]*chunkSlot, n+1)
		copy(out.slots, cs.slots)
		out.slots[n] = pinnedSlot(c)
		return out, nil
	}
	old, err := cs.chunk(n - 1)
	if err != nil {
		return nil, err
	}
	b := newChunkBuilder(cs.schema, old.rows+1)
	buf := make([]types.Value, 0, cs.schema.Len())
	for r := 0; r < old.rows; r++ {
		buf = old.DecodeRow(r, buf[:0])
		if err := b.appendRow(buf); err != nil {
			return nil, err
		}
	}
	if err := b.appendRow(tuple); err != nil {
		return nil, err
	}
	out.slots = make([]*chunkSlot, n)
	copy(out.slots, cs.slots)
	out.slots[n-1] = pinnedSlot(b.finish())
	return out, nil
}

// withUpdate returns a new store with (row, col) replaced by v. Only the
// affected chunk is rebuilt; the new chunk is pinned resident.
func (cs *colStore) withUpdate(row, col int, v types.Value) (*colStore, error) {
	ci, off := cs.rowChunk(row)
	old, err := cs.chunk(ci)
	if err != nil {
		return nil, err
	}
	b := newChunkBuilder(cs.schema, old.rows)
	buf := make([]types.Value, 0, cs.schema.Len())
	for r := 0; r < old.rows; r++ {
		buf = old.DecodeRow(r, buf[:0])
		if r == off {
			buf[col] = v
		}
		if err := b.appendRow(buf); err != nil {
			return nil, err
		}
	}
	out := &colStore{schema: cs.schema, chunkRows: cs.chunkRows, rows: cs.rows}
	out.slots = make([]*chunkSlot, len(cs.slots))
	copy(out.slots, cs.slots)
	out.slots[ci] = pinnedSlot(b.finish())
	return out, nil
}

// materialize decodes the whole store into row-major tuples.
func (cs *colStore) materialize() ([][]types.Value, error) {
	out := make([][]types.Value, 0, cs.rows)
	for i := 0; i < len(cs.slots); i++ {
		c, err := cs.chunk(i)
		if err != nil {
			return nil, err
		}
		for r := 0; r < c.rows; r++ {
			out = append(out, c.DecodeRow(r, make([]types.Value, 0, len(c.cols))))
		}
	}
	return out, nil
}

// rowChunkSource lazily encodes chunks from an immutable row-major tuple
// slice. It backs the derived columnar view of resident relations: the
// rows are the ground truth, so encoded chunks are freely evictable and
// re-encoding is deterministic.
type rowChunkSource struct {
	schema    *Schema
	tuples    [][]types.Value
	chunkRows int
}

// NumChunks implements ChunkSource.
func (s *rowChunkSource) NumChunks() int {
	return (len(s.tuples) + s.chunkRows - 1) / s.chunkRows
}

// ChunkRows implements ChunkSource.
func (s *rowChunkSource) ChunkRows() int { return s.chunkRows }

// Rows implements ChunkSource.
func (s *rowChunkSource) Rows() int { return len(s.tuples) }

// ReadChunk implements ChunkSource.
func (s *rowChunkSource) ReadChunk(i int) (*Chunk, error) {
	lo := i * s.chunkRows
	hi := lo + s.chunkRows
	if hi > len(s.tuples) {
		hi = len(s.tuples)
	}
	if lo < 0 || lo >= hi {
		return nil, fmt.Errorf("rel: chunk %d out of range", i)
	}
	return encodeRows(s.schema, s.tuples[lo:hi])
}
