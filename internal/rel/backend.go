package rel

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Backend is the pluggable storage layer beneath the catalog: named
// segments hold chunk-encoded relations that reopen as lazily-loading
// ChunkSources (resident chunks are governed by the global memory
// quota), and named blobs hold the small metadata documents — manifests,
// programs — that describe them. Both implementations below are safe
// for concurrent use.
type Backend interface {
	// PutBlob stores a small metadata document under name, replacing any
	// previous content.
	PutBlob(name string, data []byte) error
	// GetBlob fetches a blob; ErrNoSegment if absent.
	GetBlob(name string) ([]byte, error)
	// WriteSegment encodes r's chunks into a new segment under name,
	// replacing any previous segment with that name.
	WriteSegment(name string, r *Relation) error
	// OpenSegment reopens a segment as a ChunkSource whose chunks load
	// on demand. The schema must match the one the segment was written
	// with (the caller's manifest records it).
	OpenSegment(name string, schema *Schema) (ChunkSource, error)
	// Segments lists segment names in sorted order.
	Segments() ([]string, error)
	// RemoveSegment deletes a segment; removing a missing segment is not
	// an error.
	RemoveSegment(name string) error
}

// ErrNoSegment reports a missing segment or blob.
var ErrNoSegment = errors.New("rel: no such segment")

// ErrBadSegment reports a corrupt or foreign segment image.
var ErrBadSegment = errors.New("rel: bad segment format")

// Segment file layout (append-friendly: chunks stream out first, the
// directory and its trailer land at the end, so a write is one forward
// pass and a partial write is detectable by the trailer check):
//
//	magic   [8]byte  "TGSEG001"
//	chunkRows u32, nchunks u32, rows u64
//	chunk 0 .. chunk n-1            (appendChunk encoding, back to back)
//	directory: nchunks × {offset u64, length u64, crc32 u32}
//	dirOffset u64                   (trailer; offset of the directory)
var segMagic = [8]byte{'T', 'G', 'S', 'E', 'G', '0', '0', '1'}

// writeSegmentTo streams r's chunks through w in the segment format.
// Chunks come from r's columnar view, so a chunk-backed relation
// round-trips its (canonical) encoding and a row-major relation encodes
// lazily chunk by chunk — peak memory is one chunk, not the table.
func writeSegmentTo(w io.Writer, r *Relation) error {
	cs := r.columnar()
	nchunks := cs.numChunks()
	hdr := make([]byte, 0, 24)
	hdr = append(hdr, segMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(cs.chunkRows))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(nchunks))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(cs.rows))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	type dirEnt struct {
		off, n uint64
		crc    uint32
	}
	dir := make([]dirEnt, nchunks)
	off := uint64(len(hdr))
	var buf []byte
	for ci := 0; ci < nchunks; ci++ {
		ck, err := cs.chunk(ci)
		if err != nil {
			return fmt.Errorf("rel: write segment chunk %d: %w", ci, err)
		}
		buf = appendChunk(buf[:0], ck)
		dir[ci] = dirEnt{off: off, n: uint64(len(buf)), crc: crc32.ChecksumIEEE(buf)}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		off += uint64(len(buf))
	}
	tail := make([]byte, 0, nchunks*20+8)
	for _, e := range dir {
		tail = binary.LittleEndian.AppendUint64(tail, e.off)
		tail = binary.LittleEndian.AppendUint64(tail, e.n)
		tail = binary.LittleEndian.AppendUint32(tail, e.crc)
	}
	tail = binary.LittleEndian.AppendUint64(tail, off)
	_, err := w.Write(tail)
	return err
}

// segEntry locates one chunk inside a segment image.
type segEntry struct {
	off, n uint64
	crc    uint32
}

// segmentSource is a lazily-loading ChunkSource over a segment image.
// ReadChunk decodes from the underlying ReaderAt on every call (the
// chunk cache, not the source, provides residency), verifies the
// directory checksum, and so returns byte-identical chunks for the
// lifetime of the segment.
type segmentSource struct {
	ra        io.ReaderAt
	schema    *Schema
	chunkRows int
	rows      int
	dir       []segEntry
	name      string
}

func (s *segmentSource) NumChunks() int { return len(s.dir) }
func (s *segmentSource) ChunkRows() int { return s.chunkRows }
func (s *segmentSource) Rows() int      { return s.rows }

func (s *segmentSource) ReadChunk(ci int) (*Chunk, error) {
	if ci < 0 || ci >= len(s.dir) {
		return nil, fmt.Errorf("%w: segment %s: chunk %d out of range", ErrBadSegment, s.name, ci)
	}
	e := s.dir[ci]
	buf := make([]byte, e.n)
	if _, err := s.ra.ReadAt(buf, int64(e.off)); err != nil {
		return nil, fmt.Errorf("rel: segment %s chunk %d: %w", s.name, ci, err)
	}
	if crc32.ChecksumIEEE(buf) != e.crc {
		return nil, fmt.Errorf("%w: segment %s: chunk %d checksum mismatch", ErrBadSegment, s.name, ci)
	}
	ck, err := decodeChunk(buf)
	if err != nil {
		return nil, fmt.Errorf("rel: segment %s chunk %d: %w", s.name, ci, err)
	}
	if len(ck.cols) != s.schema.Len() {
		return nil, fmt.Errorf("%w: segment %s: chunk %d has %d columns, schema has %d",
			ErrBadSegment, s.name, ci, len(ck.cols), s.schema.Len())
	}
	return ck, nil
}

// openSegmentImage parses the header and directory of a segment image
// and returns the lazily-loading source. size is the image length.
func openSegmentImage(name string, schema *Schema, ra io.ReaderAt, size int64) (ChunkSource, error) {
	if size < 24+8 {
		return nil, fmt.Errorf("%w: segment %s: truncated", ErrBadSegment, name)
	}
	hdr := make([]byte, 24)
	if _, err := ra.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	if !bytes.Equal(hdr[:8], segMagic[:]) {
		return nil, fmt.Errorf("%w: segment %s: bad magic", ErrBadSegment, name)
	}
	chunkRows := int(binary.LittleEndian.Uint32(hdr[8:12]))
	nchunks := int(binary.LittleEndian.Uint32(hdr[12:16]))
	rows := int(binary.LittleEndian.Uint64(hdr[16:24]))
	trailer := make([]byte, 8)
	if _, err := ra.ReadAt(trailer, size-8); err != nil {
		return nil, err
	}
	dirOff := int64(binary.LittleEndian.Uint64(trailer))
	dirLen := int64(nchunks) * 20
	if dirOff < 24 || dirOff+dirLen != size-8 {
		return nil, fmt.Errorf("%w: segment %s: bad directory trailer", ErrBadSegment, name)
	}
	raw := make([]byte, dirLen)
	if _, err := ra.ReadAt(raw, dirOff); err != nil {
		return nil, err
	}
	dir := make([]segEntry, nchunks)
	for i := range dir {
		p := raw[i*20:]
		dir[i] = segEntry{
			off: binary.LittleEndian.Uint64(p[0:8]),
			n:   binary.LittleEndian.Uint64(p[8:16]),
			crc: binary.LittleEndian.Uint32(p[16:20]),
		}
		if dir[i].off+dir[i].n > uint64(dirOff) {
			return nil, fmt.Errorf("%w: segment %s: chunk %d overruns directory", ErrBadSegment, name, i)
		}
	}
	src := &segmentSource{ra: ra, schema: schema, chunkRows: chunkRows, rows: rows, dir: dir, name: name}
	if chunkRows <= 0 || nchunks != (rows+chunkRows-1)/chunkRows {
		return nil, fmt.Errorf("%w: segment %s: inconsistent shape", ErrBadSegment, name)
	}
	return src, nil
}

// --- in-memory backend ------------------------------------------------

// MemBackend keeps segments and blobs as encoded byte images in memory.
// It exercises the exact wire format of the file backend (segments are
// parsed, checksummed, and chunk-faulted identically), which makes it
// the reference implementation for tests and ephemeral catalogs.
type MemBackend struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	segs  map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{blobs: make(map[string][]byte), segs: make(map[string][]byte)}
}

// PutBlob implements Backend.
func (b *MemBackend) PutBlob(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blobs[name] = append([]byte(nil), data...)
	return nil
}

// GetBlob implements Backend.
func (b *MemBackend) GetBlob(name string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	d, ok := b.blobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: blob %s", ErrNoSegment, name)
	}
	return append([]byte(nil), d...), nil
}

// WriteSegment implements Backend.
func (b *MemBackend) WriteSegment(name string, r *Relation) error {
	var buf bytes.Buffer
	if err := writeSegmentTo(&buf, r); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.segs[name] = buf.Bytes()
	return nil
}

// OpenSegment implements Backend.
func (b *MemBackend) OpenSegment(name string, schema *Schema) (ChunkSource, error) {
	b.mu.RLock()
	img, ok := b.segs[name]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSegment, name)
	}
	return openSegmentImage(name, schema, bytes.NewReader(img), int64(len(img)))
}

// Segments implements Backend.
func (b *MemBackend) Segments() ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.segs))
	for n := range b.segs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// RemoveSegment implements Backend.
func (b *MemBackend) RemoveSegment(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.segs, name)
	return nil
}

// --- file backend -----------------------------------------------------

// FileBackend stores each segment as an append-only file `<name>.seg`
// and each blob as `<name>.blob` inside one directory. Segment opens
// keep the file handle inside the returned ChunkSource, and chunk reads
// are positional (ReadAt), so many goroutines can fault chunks from one
// open segment concurrently while the chunk cache bounds what stays
// resident.
type FileBackend struct {
	dir string
}

// NewFileBackend returns a backend rooted at dir, creating it if needed.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileBackend{dir: dir}, nil
}

// Dir returns the backend's root directory.
func (b *FileBackend) Dir() string { return b.dir }

func (b *FileBackend) path(name, ext string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return "", fmt.Errorf("rel: bad segment name %q", name)
	}
	return filepath.Join(b.dir, name+ext), nil
}

// PutBlob implements Backend. The write lands under a temporary name
// and renames into place, so readers never observe a torn blob.
func (b *FileBackend) PutBlob(name string, data []byte) error {
	p, err := b.path(name, ".blob")
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// GetBlob implements Backend.
func (b *FileBackend) GetBlob(name string) ([]byte, error) {
	p, err := b.path(name, ".blob")
	if err != nil {
		return nil, err
	}
	d, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: blob %s", ErrNoSegment, name)
	}
	return d, err
}

// WriteSegment implements Backend: one forward streaming pass into a
// temporary file, renamed into place on success.
func (b *FileBackend) WriteSegment(name string, r *Relation) error {
	p, err := b.path(name, ".seg")
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := writeSegmentTo(f, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, p)
}

// OpenSegment implements Backend. The file handle lives inside the
// returned source; it is released when the source is garbage collected
// (segments back long-lived relations, not scoped readers).
func (b *FileBackend) OpenSegment(name string, schema *Schema) (ChunkSource, error) {
	p, err := b.path(name, ".seg")
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoSegment, name)
	}
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	src, err := openSegmentImage(name, schema, f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return src, nil
}

// Segments implements Backend.
func (b *FileBackend) Segments() ([]string, error) {
	ents, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if n, ok := strings.CutSuffix(e.Name(), ".seg"); ok && !e.IsDir() {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// RemoveSegment implements Backend.
func (b *FileBackend) RemoveSegment(name string) error {
	p, err := b.path(name, ".seg")
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}
