package rel

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

func testRelation(t testing.TB) *Relation {
	t.Helper()
	r := New("Emp", MustSchema(
		Column{Name: "id", Kind: types.Int},
		Column{Name: "name", Kind: types.Text},
		Column{Name: "dept", Kind: types.Text},
		Column{Name: "salary", Kind: types.Float},
		Column{Name: "hired", Kind: types.Date},
	))
	rows := []struct {
		id      int64
		name    string
		dept    string
		salary  float64
		y, m, d int
	}{
		{1, "alice", "eng", 9000, 1988, 3, 1},
		{2, "bob", "eng", 4500, 1991, 7, 15},
		{3, "carol", "sales", 5200, 1989, 1, 2},
		{4, "dan", "sales", 3100, 1992, 11, 30},
		{5, "erin", "ops", 7000, 1985, 6, 6},
	}
	for _, x := range rows {
		r.MustAppend([]types.Value{
			types.NewInt(x.id), types.NewText(x.name), types.NewText(x.dept),
			types.NewFloat(x.salary), types.DateYMD(x.y, x.m, x.d),
		})
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := MustSchema(Column{Name: "a", Kind: types.Int}, Column{Name: "b", Kind: types.Text})
	if s.Len() != 2 || s.Index("b") != 1 || s.Index("z") != -1 {
		t.Fatal("schema lookup broken")
	}
	if k, ok := s.KindOf("a"); !ok || k != types.Int {
		t.Fatal("KindOf broken")
	}
	if s.String() != "(a int, b text)" {
		t.Errorf("String = %s", s)
	}
	if !s.Equal(MustSchema(Column{Name: "a", Kind: types.Int}, Column{Name: "b", Kind: types.Text})) {
		t.Error("Equal false negative")
	}
	if s.Equal(MustSchema(Column{Name: "a", Kind: types.Int})) {
		t.Error("Equal false positive")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Kind: types.Int}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Kind: types.Invalid}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := NewSchema(
		Column{Name: "a", Kind: types.Int},
		Column{Name: "a", Kind: types.Text},
	); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestAppendValidation(t *testing.T) {
	r := New("T", MustSchema(Column{Name: "a", Kind: types.Int}))
	if err := r.Append([]types.Value{types.NewInt(1), types.NewInt(2)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := r.Append([]types.Value{types.NewText("x")}); err == nil {
		t.Error("wrong kind accepted")
	}
	if err := r.Append([]types.Value{types.Null}); err != nil {
		t.Errorf("null rejected: %v", err)
	}
}

func TestComputedAttributes(t *testing.T) {
	r := testRelation(t)
	if err := r.AddComputed("monthly", expr.MustParse("salary / 12")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddComputed("label", expr.MustParse("name || ' (' || dept || ')'")); err != nil {
		t.Fatal(err)
	}
	// Computed may reference computed.
	if err := r.AddComputed("monthly2", expr.MustParse("monthly * 2")); err != nil {
		t.Fatal(err)
	}
	row := r.Row(0)
	if got := row.Attr("monthly").Float(); got != 750 {
		t.Errorf("monthly = %g", got)
	}
	if got := row.Attr("label").Text(); got != "alice (eng)" {
		t.Errorf("label = %q", got)
	}
	if got := row.Attr("monthly2").Float(); got != 1500 {
		t.Errorf("monthly2 = %g", got)
	}

	// Duplicates and bad definitions rejected.
	if err := r.AddComputed("monthly", expr.MustParse("1")); err == nil {
		t.Error("duplicate computed accepted")
	}
	if err := r.AddComputed("bad", expr.MustParse("nosuch + 1")); err == nil {
		t.Error("dangling reference accepted")
	}

	// SetComputed with a dependent downstream may not change kind.
	if err := r.SetComputed("monthly", expr.MustParse("'text now'")); err == nil {
		t.Error("kind change under dependency accepted")
	}
	if err := r.SetComputed("monthly", expr.MustParse("salary / 10")); err != nil {
		t.Fatal(err)
	}
	if got := r.Row(0).Attr("monthly2").Float(); got != 1800 {
		t.Errorf("redefinition did not propagate: %g", got)
	}

	// RemoveComputed refuses when depended upon.
	if err := r.RemoveComputed("monthly"); err == nil {
		t.Error("removal of depended-on attribute accepted")
	}
	if err := r.RemoveComputed("monthly2"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveComputed("monthly"); err != nil {
		t.Fatal(err)
	}
	if r.HasAttr("monthly") {
		t.Error("attribute still present after removal")
	}
}

func TestProject(t *testing.T) {
	r := testRelation(t)
	p, err := Project(r, []string{"name", "salary"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Len() != 2 || p.Len() != 5 {
		t.Fatalf("projected to %s with %d tuples", p.Schema(), p.Len())
	}
	if got := p.Row(1).Attr("name").Text(); got != "bob" {
		t.Errorf("row 1 name = %q", got)
	}
	if p.HasAttr("dept") {
		t.Error("dept survived projection")
	}
	if _, err := Project(r, []string{"nosuch"}); err == nil {
		t.Error("projection of missing column accepted")
	}

	// Computed attributes survive when their references do.
	r2 := testRelation(t)
	if err := r2.AddComputed("half", expr.MustParse("salary / 2")); err != nil {
		t.Fatal(err)
	}
	p2, err := Project(r2, []string{"id", "salary"})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.HasAttr("half") {
		t.Error("computed attr with surviving refs dropped")
	}
	p3, err := Project(r2, []string{"id", "name"})
	if err != nil {
		t.Fatal(err)
	}
	if p3.HasAttr("half") {
		t.Error("computed attr with dead refs kept")
	}
}

func TestRestrict(t *testing.T) {
	r := testRelation(t)
	out, err := Restrict(r, expr.MustParse("salary > 5000"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("restricted to %d tuples, want 3", out.Len())
	}
	for i := 0; i < out.Len(); i++ {
		if out.Row(i).Attr("salary").Float() <= 5000 {
			t.Fatal("predicate violated")
		}
	}
	// Type errors rejected up front.
	if _, err := Restrict(r, expr.MustParse("salary + 1")); err == nil {
		t.Error("non-bool predicate accepted")
	}
	if _, err := Restrict(r, expr.MustParse("nosuch = 1")); err == nil {
		t.Error("unknown attr accepted")
	}
	// Null predicate results drop the tuple.
	r.MustAppend([]types.Value{
		types.NewInt(6), types.NewText("fred"), types.NewText("ops"),
		types.Null, types.DateYMD(1990, 1, 1),
	})
	out, err = Restrict(r, expr.MustParse("salary > 0"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("null salary retained: %d tuples", out.Len())
	}
}

func TestRestrictUsesIndex(t *testing.T) {
	r := testRelation(t)
	if err := r.CreateIndex("salary"); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"salary = 5200.0", "salary < 5000.0", "salary >= 5200.0", "4500.0 >= salary"} {
		out, err := Restrict(r, expr.MustParse(src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		// Cross-check against a scan on the unindexed clone.
		scan, err := Restrict(testRelation(t), expr.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != scan.Len() {
			t.Errorf("%s: index %d vs scan %d", src, out.Len(), scan.Len())
		}
	}
}

func TestSample(t *testing.T) {
	r := testRelation(t)
	all, err := Sample(r, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != r.Len() {
		t.Errorf("p=1 kept %d of %d", all.Len(), r.Len())
	}
	none, err := Sample(r, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if none.Len() != 0 {
		t.Errorf("p=0 kept %d", none.Len())
	}
	if _, err := Sample(r, 1.5, 1); err == nil {
		t.Error("p > 1 accepted")
	}
	// Determinism under a fixed seed.
	a, _ := Sample(r, 0.5, 42)
	b, _ := Sample(r, 0.5, 42)
	if a.Len() != b.Len() {
		t.Error("same seed, different sample")
	}
}

func TestJoin(t *testing.T) {
	emp := testRelation(t)
	dept := New("Dept", MustSchema(
		Column{Name: "dept", Kind: types.Text},
		Column{Name: "floor", Kind: types.Int},
	))
	dept.MustAppend([]types.Value{types.NewText("eng"), types.NewInt(3)})
	dept.MustAppend([]types.Value{types.NewText("sales"), types.NewInt(1)})

	pred := expr.MustParse("dept = dept_r")
	for _, strat := range []JoinStrategy{JoinAuto, JoinHash, JoinNestedLoop} {
		out, err := Join(emp, dept, pred, strat)
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if out.Len() != 4 { // 2 eng + 2 sales; ops unmatched
			t.Fatalf("strategy %d: %d tuples, want 4", strat, out.Len())
		}
		if !out.Schema().Has("dept_r") {
			t.Fatal("collision column not renamed")
		}
	}

	// Theta join falls back to nested loop under auto.
	theta := expr.MustParse("salary > 5000.0 and floor = 1")
	out, err := Join(emp, dept, theta, JoinAuto)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 { // 3 emps over 5000 x the single floor-1 dept
		t.Fatalf("theta join = %d tuples, want 3", out.Len())
	}
	if _, err := Join(emp, dept, theta, JoinHash); err == nil {
		t.Error("hash join accepted a non-equi predicate")
	}
}

func TestSort(t *testing.T) {
	r := testRelation(t)
	asc, err := Sort(r, "salary", false)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 0; i < asc.Len(); i++ {
		s := asc.Row(i).Attr("salary").Float()
		if s < prev {
			t.Fatal("ascending sort out of order")
		}
		prev = s
	}
	desc, err := Sort(r, "salary", true)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Row(0).Attr("name").Text() != "alice" {
		t.Error("descending top is not the max")
	}
	if _, err := Sort(r, "nosuch", false); err == nil {
		t.Error("sort on missing attr accepted")
	}
}

func TestUnion(t *testing.T) {
	a := testRelation(t)
	b := testRelation(t)
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 10 {
		t.Fatalf("union = %d", u.Len())
	}
	other := New("X", MustSchema(Column{Name: "q", Kind: types.Int}))
	if _, err := Union(a, other); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := Union(); err == nil {
		t.Error("empty union accepted")
	}
}

func TestPartition(t *testing.T) {
	r := testRelation(t)
	parts, err := Partition(r, []expr.Node{
		expr.MustParse("salary <= 5000.0"),
		expr.MustParse("salary > 5000.0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Len()+parts[1].Len() != r.Len() {
		t.Fatal("partition lost tuples")
	}
	if parts[0].Len() != 2 || parts[1].Len() != 3 {
		t.Fatalf("split %d/%d", parts[0].Len(), parts[1].Len())
	}
	// First matching predicate wins; overlapping predicates do not
	// duplicate.
	parts, err = Partition(r, []expr.Node{
		expr.MustParse("true"),
		expr.MustParse("salary > 0.0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Len() != 5 || parts[1].Len() != 0 {
		t.Fatal("first-match rule violated")
	}
}

func TestDistinctValues(t *testing.T) {
	r := testRelation(t)
	vals, err := DistinctValues(r, "dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("distinct = %v", vals)
	}
	if vals[0].Text() != "eng" {
		t.Error("first-appearance order violated")
	}
}

func TestUpdateAndIndexMaintenance(t *testing.T) {
	r := testRelation(t)
	if err := r.CreateIndex("salary"); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateIndex("salary"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := r.Update(0, "salary", types.NewFloat(100)); err != nil {
		t.Fatal(err)
	}
	idx, _ := r.Index("salary")
	if rows := idx.Get(types.NewFloat(9000)); len(rows) != 0 {
		t.Error("old index entry survives")
	}
	if rows := idx.Get(types.NewFloat(100)); len(rows) != 1 || rows[0] != 0 {
		t.Error("new index entry missing")
	}
	if err := r.Update(0, "salary", types.NewText("x")); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := r.Update(99, "salary", types.NewFloat(1)); err == nil {
		t.Error("row out of range accepted")
	}
	if err := r.Update(0, "nosuch", types.NewFloat(1)); err == nil {
		t.Error("missing column accepted")
	}
}

func TestMapColumn(t *testing.T) {
	r := testRelation(t)
	out, err := MapColumn(r, "salary", expr.MustParse("salary * 2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Row(0).Attr("salary").Float(); got != 18000 {
		t.Errorf("mapped = %g", got)
	}
	// Original untouched.
	if got := r.Row(0).Attr("salary").Float(); got != 9000 {
		t.Errorf("input mutated: %g", got)
	}
	// Kind change is allowed and reflected in the schema.
	out, err = MapColumn(r, "salary", expr.MustParse("str(salary)"))
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := out.Schema().KindOf("salary"); k != types.Text {
		t.Errorf("kind after map = %s", k)
	}
	if _, err := MapColumn(r, "nosuch", expr.MustParse("1")); err == nil {
		t.Error("missing column accepted")
	}
}

func TestSwapColumns(t *testing.T) {
	r := testRelation(t)
	out, err := SwapColumns(r, "name", "dept")
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Row(0).Attr("name").Text(); got != "eng" {
		t.Errorf("name after swap = %q", got)
	}
	if got := out.Row(0).Attr("dept").Text(); got != "alice" {
		t.Errorf("dept after swap = %q", got)
	}
	if _, err := SwapColumns(r, "name", "salary"); err == nil {
		t.Error("cross-kind swap accepted")
	}
}

func TestDropColumn(t *testing.T) {
	r := testRelation(t)
	out, err := DropColumn(r, "dept")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Has("dept") || out.Schema().Len() != 4 {
		t.Error("drop failed")
	}
	single := New("S", MustSchema(Column{Name: "only", Kind: types.Int}))
	if _, err := DropColumn(single, "only"); err == nil {
		t.Error("dropping the only column accepted")
	}
}

func TestProvenance(t *testing.T) {
	r := testRelation(t)
	restricted, err := Restrict(r, expr.MustParse("salary > 5000"))
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := Sort(restricted, "salary", true)
	if err != nil {
		t.Fatal(err)
	}
	projected, err := Project(sorted, []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 of the final result is alice (salary 9000), row 0 of Emp.
	base, row := projected.BaseRow(0)
	if base != r || row != 0 {
		t.Fatalf("BaseRow(0) = %s row %d", base.Name(), row)
	}
	// Row 2 is carol (5200), base row 2.
	base, row = projected.BaseRow(2)
	if base != r || row != 2 {
		t.Fatalf("BaseRow(2) = %s row %d", base.Name(), row)
	}
	// Join output has no provenance.
	j, err := Join(r, r, expr.MustParse("id = id_r"), JoinAuto)
	if err != nil {
		t.Fatal(err)
	}
	base, row = j.BaseRow(1)
	if base != j || row != 1 {
		t.Error("join should not claim provenance")
	}
}

func TestRowEnvMissingAttr(t *testing.T) {
	r := testRelation(t)
	if _, ok := r.Row(0).AttrValue("ghost"); ok {
		t.Error("missing attribute reported present")
	}
	if !r.Row(0).Attr("ghost").IsNull() {
		t.Error("missing attribute not null")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := testRelation(t)
	c := r.Clone()
	if err := c.Update(0, "salary", types.NewFloat(1)); err != nil {
		t.Fatal(err)
	}
	if r.Row(0).Attr("salary").Float() == 1 {
		t.Error("clone shares storage")
	}
}

func TestDistinct(t *testing.T) {
	r := New("D", MustSchema(
		Column{Name: "a", Kind: types.Int},
		Column{Name: "b", Kind: types.Text},
	))
	for _, x := range [][2]interface{}{
		{1, "x"}, {2, "y"}, {1, "x"}, {1, "z"}, {2, "y"},
	} {
		r.MustAppend([]types.Value{
			types.NewInt(int64(x[0].(int))), types.NewText(x[1].(string)),
		})
	}
	out := Distinct(r)
	if out.Len() != 3 {
		t.Fatalf("distinct = %d tuples, want 3", out.Len())
	}
	// First occurrences kept in order.
	if out.Tuple(0)[1].Text() != "x" || out.Tuple(1)[1].Text() != "y" || out.Tuple(2)[1].Text() != "z" {
		t.Fatal("distinct order wrong")
	}
	// Provenance points at first occurrences.
	base, row := out.BaseRow(2)
	if base != r || row != 3 {
		t.Fatalf("distinct provenance = row %d", row)
	}
}

func TestLimit(t *testing.T) {
	r := testRelation(t)
	out, err := Limit(r, 2)
	if err != nil || out.Len() != 2 {
		t.Fatalf("limit = %d, %v", out.Len(), err)
	}
	out, err = Limit(r, 100)
	if err != nil || out.Len() != r.Len() {
		t.Fatalf("over-limit = %d, %v", out.Len(), err)
	}
	if _, err := Limit(r, -1); err == nil {
		t.Error("negative limit accepted")
	}
}
