package rel

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

// mutation drives one simulated table write against a relation version,
// returning the new version and the delta op describing it — the same
// shape the db write path emits.
func randomMutation(rng *rand.Rand, r *Relation) (*Relation, DeltaOp) {
	tags := []string{"a", "b", "c", "d"}
	if r.Len() == 0 || rng.Intn(3) == 0 {
		nt := r.CowClone()
		nt.MustAppend([]types.Value{
			types.NewInt(int64(rng.Intn(50))),
			types.NewFloat(rng.Float64()*100 - 50),
			types.NewText(tags[rng.Intn(len(tags))]),
		})
		return nt, DeltaOp{Kind: DeltaAppend, Row: nt.Len() - 1, Tuple: nt.Tuple(nt.Len() - 1)}
	}
	row := rng.Intn(r.Len())
	old := r.Tuple(row)
	nt := r.CowClone()
	cols := []string{"k", "v", "tag"}
	col := cols[rng.Intn(len(cols))]
	var nv types.Value
	switch col {
	case "k":
		nv = types.NewInt(int64(rng.Intn(50)))
	case "v":
		nv = types.NewFloat(rng.Float64()*100 - 50)
	default:
		nv = types.NewText(tags[rng.Intn(len(tags))])
	}
	if err := nt.Update(row, col, nv); err != nil {
		panic(err)
	}
	return nt, DeltaOp{Kind: DeltaUpdate, Row: row, Tuple: nt.Tuple(row), Old: old}
}

// sameTuples asserts two relations are value-identical row by row.
func sameTuples(t *testing.T, label string, got, want *Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	if !got.Schema().Equal(want.Schema()) {
		t.Fatalf("%s: schema mismatch", label)
	}
	for i := 0; i < want.Len(); i++ {
		g, w := got.Tuple(i), want.Tuple(i)
		for j := range w {
			if !g[j].Equal(w[j]) {
				t.Fatalf("%s: row %d col %d: got %v want %v", label, i, j, g[j], w[j])
			}
		}
	}
}

// Differential property: maintaining a fused restrict→project pipeline
// through FusedDelta over a random write sequence produces exactly the
// relation a full scan of the final input produces — including
// provenance — with fallbacks allowed only where membership flips.
func TestFusedDeltaDifferential(t *testing.T) {
	ops := []FusedOp{
		{Pred: expr.MustParse("v > 0.0")},
		{Project: []string{"k", "v"}},
	}
	ctx := context.Background()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cur := randomRelation(30, seed)
		res, err := fusedScan(ctx, cur, ops, 0)
		if err != nil {
			t.Fatal(err)
		}
		memo := res.Out
		fallbacks, applied := 0, 0
		for step := 0; step < 60; step++ {
			// Batch 1-3 writes between frames, like a burst between renders.
			var d TupleDelta
			next := cur
			for n := rng.Intn(3) + 1; n > 0; n-- {
				var op DeltaOp
				next, op = randomMutation(rng, next)
				d.Ops = append(d.Ops, op)
			}
			cur = next
			inc, outDelta, ok, err := FusedDelta(ctx, cur, memo, ops, &d)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			full, err := fusedScan(ctx, cur, ops, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				fallbacks++
				memo = full.Out
				continue
			}
			applied++
			sameTuples(t, fmt.Sprintf("seed %d step %d", seed, step), inc.Out, full.Out)
			// Provenance must match the full scan's positionally.
			for i := 0; i < inc.Out.Len(); i++ {
				ib, ir := inc.Out.BaseRow(i)
				fb, fr := full.Out.BaseRow(i)
				if ib != fb || ir != fr {
					t.Fatalf("seed %d step %d: provenance row %d: got (%p,%d) want (%p,%d)",
						seed, step, i, ib, ir, fb, fr)
				}
			}
			// The output delta must replay the memo into the new output.
			if outDelta == nil {
				t.Fatalf("seed %d step %d: ok with nil output delta", seed, step)
			}
			memo = inc.Out
		}
		if applied == 0 {
			t.Fatalf("seed %d: delta path never applied (%d fallbacks)", seed, fallbacks)
		}
	}
}

// An update that flips predicate membership is an interior insert or
// delete; the positional patch must refuse it.
func TestFusedDeltaMembershipFlipFallback(t *testing.T) {
	ctx := context.Background()
	ops := []FusedOp{{Pred: expr.MustParse("v > 0.0")}}
	r := New("T", MustSchema(
		Column{Name: "k", Kind: types.Int},
		Column{Name: "v", Kind: types.Float},
		Column{Name: "tag", Kind: types.Text},
	))
	for i := 0; i < 5; i++ {
		r.MustAppend([]types.Value{
			types.NewInt(int64(i)), types.NewFloat(float64(i) - 2), types.NewText("x"),
		})
	}
	res, err := fusedScan(ctx, r, ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1 has v=-1 (filtered out); flip it in.
	old := r.Tuple(1)
	nt := r.CowClone()
	if err := nt.Update(1, "v", types.NewFloat(7)); err != nil {
		t.Fatal(err)
	}
	d := &TupleDelta{Ops: []DeltaOp{{Kind: DeltaUpdate, Row: 1, Tuple: nt.Tuple(1), Old: old}}}
	if _, _, ok, err := FusedDelta(ctx, nt, res.Out, ops, d); err != nil || ok {
		t.Fatalf("membership flip: ok=%v err=%v, want fallback", ok, err)
	}
	// A non-flipping update on the same row applies.
	old2 := r.Tuple(2)
	nt2 := r.CowClone()
	if err := nt2.Update(2, "k", types.NewInt(99)); err != nil {
		t.Fatal(err)
	}
	d2 := &TupleDelta{Ops: []DeltaOp{{Kind: DeltaUpdate, Row: 2, Tuple: nt2.Tuple(2), Old: old2}}}
	inc, _, ok, err := FusedDelta(ctx, nt2, res.Out, ops, d2)
	if err != nil || !ok {
		t.Fatalf("in-place update: ok=%v err=%v, want applied", ok, err)
	}
	full, err := fusedScan(ctx, nt2, ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "in-place update", inc.Out, full.Out)
}

// The memoized output must never be mutated by a delta application —
// holders of the old version (a client frame in flight) keep their rows.
func TestFusedDeltaDoesNotMutateMemo(t *testing.T) {
	ctx := context.Background()
	ops := []FusedOp{{Pred: expr.MustParse("v > 0.0")}}
	r := randomRelation(20, 7)
	res, err := fusedScan(ctx, r, ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	memo := res.Out
	wantLen := memo.Len()
	want := make([][]types.Value, wantLen)
	for i := range want {
		want[i] = memo.Tuple(i)
	}
	cur := r
	for step := 0; step < 40; step++ {
		rng := rand.New(rand.NewSource(int64(step)))
		next, op := randomMutation(rng, cur)
		cur = next
		inc, _, ok, err := FusedDelta(ctx, cur, memo, ops, &TupleDelta{Ops: []DeltaOp{op}})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			full, err := fusedScan(ctx, cur, ops, 0)
			if err != nil {
				t.Fatal(err)
			}
			inc = full
		}
		if memo.Len() != wantLen {
			t.Fatalf("step %d: memo grew from %d to %d rows", step, wantLen, memo.Len())
		}
		for i := range want {
			for j := range want[i] {
				if !memo.Tuple(i)[j].Equal(want[i][j]) {
					t.Fatalf("step %d: memo row %d mutated", step, i)
				}
			}
		}
		memo = inc.Out
		wantLen = memo.Len()
		want = make([][]types.Value, wantLen)
		for i := range want {
			want[i] = memo.Tuple(i)
		}
	}
}

// joinFixtures builds the two-sided fixture used by the join state tests.
func joinFixtures(seedA, seedB int64, nA, nB int) (*Relation, *Relation) {
	a := randomRelation(nA, seedA)
	rng := rand.New(rand.NewSource(seedB))
	b := New("B", MustSchema(
		Column{Name: "k2", Kind: types.Int},
		Column{Name: "w", Kind: types.Float},
	))
	for i := 0; i < nB; i++ {
		b.MustAppend([]types.Value{
			types.NewInt(int64(rng.Intn(50))),
			types.NewFloat(rng.Float64()),
		})
	}
	return a, b
}

// mutateJoinSide applies one random write to one side of a join fixture.
func mutateJoinSide(rng *rand.Rand, r *Relation, isA bool) (*Relation, DeltaOp) {
	if r.Len() == 0 || rng.Intn(2) == 0 {
		nt := r.CowClone()
		if isA {
			tags := []string{"a", "b", "c", "d"}
			nt.MustAppend([]types.Value{
				types.NewInt(int64(rng.Intn(50))),
				types.NewFloat(rng.Float64()*100 - 50),
				types.NewText(tags[rng.Intn(len(tags))]),
			})
		} else {
			nt.MustAppend([]types.Value{
				types.NewInt(int64(rng.Intn(50))),
				types.NewFloat(rng.Float64()),
			})
		}
		return nt, DeltaOp{Kind: DeltaAppend, Row: nt.Len() - 1, Tuple: nt.Tuple(nt.Len() - 1)}
	}
	row := rng.Intn(r.Len())
	old := r.Tuple(row)
	nt := r.CowClone()
	// Mostly non-key updates (maintainable); sometimes the key (fallback).
	col, nv := "v", types.NewFloat(rng.Float64()*100-50)
	if !isA {
		col, nv = "w", types.NewFloat(rng.Float64())
	}
	if rng.Intn(5) == 0 {
		if isA {
			col, nv = "k", types.NewInt(int64(rng.Intn(50)))
		} else {
			col, nv = "k2", types.NewInt(int64(rng.Intn(50)))
		}
	}
	if err := nt.Update(row, col, nv); err != nil {
		panic(err)
	}
	return nt, DeltaOp{Kind: DeltaUpdate, Row: row, Tuple: nt.Tuple(row), Old: old}
}

// Differential property: a JoinState maintained through random write
// sequences always matches a full hash re-join of the current inputs,
// rebuilding from scratch whenever Apply declines.
func TestJoinStateDifferential(t *testing.T) {
	pred := expr.MustParse("k = k2 and v > 0.0")
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l, r := joinFixtures(seed, seed+100, 25, 20)
		out, err := Join(l, r, pred, JoinHash)
		if err != nil {
			t.Fatal(err)
		}
		state, ok := BuildJoinState(l, r, out, pred)
		if !ok {
			t.Fatalf("seed %d: BuildJoinState declined", seed)
		}
		applied, fallbacks := 0, 0
		for step := 0; step < 50; step++ {
			var dl, dr TupleDelta
			for n := rng.Intn(3) + 1; n > 0; n-- {
				if rng.Intn(2) == 0 {
					var op DeltaOp
					l, op = mutateJoinSide(rng, l, true)
					dl.Ops = append(dl.Ops, op)
				} else {
					var op DeltaOp
					r, op = mutateJoinSide(rng, r, false)
					dr.Ops = append(dr.Ops, op)
				}
			}
			full, err := Join(l, r, pred, JoinHash)
			if err != nil {
				t.Fatal(err)
			}
			var dlp, drp *TupleDelta
			if len(dl.Ops) > 0 {
				dlp = &dl
			}
			if len(dr.Ops) > 0 {
				drp = &dr
			}
			newOut, _, ok := state.Apply(l, r, dlp, drp)
			if !ok {
				fallbacks++
				state, ok = BuildJoinState(l, r, full, pred)
				if !ok {
					t.Fatalf("seed %d step %d: rebuild declined", seed, step)
				}
				continue
			}
			applied++
			sameTuples(t, fmt.Sprintf("seed %d step %d", seed, step), newOut, full)
		}
		if applied == 0 {
			t.Fatalf("seed %d: join delta path never applied (%d fallbacks)", seed, fallbacks)
		}
	}
}

// Build-side updates rewrite bucket content under existing pairs; Apply
// must decline them.
func TestJoinStateBuildUpdateFallback(t *testing.T) {
	pred := expr.MustParse("k = k2")
	l, r := joinFixtures(3, 103, 20, 10) // r smaller → r is the build side
	out, err := Join(l, r, pred, JoinHash)
	if err != nil {
		t.Fatal(err)
	}
	state, ok := BuildJoinState(l, r, out, pred)
	if !ok {
		t.Fatal("BuildJoinState declined")
	}
	old := r.Tuple(0)
	nr := r.CowClone()
	if err := nr.Update(0, "w", types.NewFloat(123)); err != nil {
		t.Fatal(err)
	}
	dr := &TupleDelta{Ops: []DeltaOp{{Kind: DeltaUpdate, Row: 0, Tuple: nr.Tuple(0), Old: old}}}
	if _, _, ok := state.Apply(l, nr, nil, dr); ok {
		t.Fatal("build-side update applied, want fallback")
	}
}
