package rel

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// DefaultChunkRows is the number of tuples per columnar chunk. 4096 rows
// keeps a chunk's int64/float64 lanes at 32 KiB each — small enough that
// a handful of chunks fit in L2, large enough that per-chunk dispatch
// overhead vanishes against the scan loop.
const DefaultChunkRows = 4096

// colVec is one column of a chunk: a contiguous typed array plus a
// validity bitmap. Exactly one of ints/floats/strs is populated,
// according to kind: Int, Bool (0/1) and Date (epoch days) share the
// int64 lane, Float uses the float64 lane, Text the string lane. A
// cleared validity bit means the value is null and the lane slot is the
// zero value.
type colVec struct {
	kind   types.Kind
	ints   []int64
	floats []float64
	strs   []string
	valid  []uint64
}

// isValid reports whether row holds a non-null value.
func (c *colVec) isValid(row int) bool {
	return c.valid[row>>6]&(1<<(uint(row)&63)) != 0
}

// value reassembles the types.Value stored at row.
func (c *colVec) value(row int) types.Value {
	if !c.isValid(row) {
		return types.Null
	}
	switch c.kind {
	case types.Int:
		return types.NewInt(c.ints[row])
	case types.Float:
		return types.NewFloat(c.floats[row])
	case types.Text:
		return types.NewText(c.strs[row])
	case types.Bool:
		return types.NewBool(c.ints[row] != 0)
	case types.Date:
		return types.NewDate(c.ints[row])
	}
	return types.Null
}

// Chunk is a fixed-size run of tuples stored column-major: per-attribute
// contiguous arrays with validity bitmaps. Chunks are immutable once
// sealed — mutation in the CoW discipline replaces the chunk pointer,
// never the arrays — so any number of relation versions, scans, and
// cursors may share one safely.
type Chunk struct {
	rows  int
	cols  []colVec
	bytes int64 // memoized resident-size estimate, set by seal
}

// Rows returns the number of tuples in the chunk.
func (c *Chunk) Rows() int { return c.rows }

// Bytes returns the chunk's approximate resident size, used for quota
// accounting by the chunk cache.
func (c *Chunk) Bytes() int64 { return c.bytes }

// Value returns the value at (col, row).
func (c *Chunk) Value(col, row int) types.Value { return c.cols[col].value(row) }

// DecodeRow materializes one tuple, appending to buf (pass buf[:0] to
// reuse a scratch slice, or nil for a fresh one).
func (c *Chunk) DecodeRow(row int, buf []types.Value) []types.Value {
	for i := range c.cols {
		buf = append(buf, c.cols[i].value(row))
	}
	return buf
}

// seal computes the memoized byte size. Called once when building.
func (c *Chunk) seal() {
	var n int64
	for i := range c.cols {
		v := &c.cols[i]
		n += int64(len(v.ints))*8 + int64(len(v.floats))*8 + int64(len(v.valid))*8
		for _, s := range v.strs {
			n += int64(len(s)) + 16
		}
	}
	c.bytes = n + 64
}

// chunkBuilder accumulates rows into a chunk.
type chunkBuilder struct {
	schema *Schema
	c      *Chunk
	cap    int
}

func newChunkBuilder(schema *Schema, capRows int) *chunkBuilder {
	b := &chunkBuilder{schema: schema, cap: capRows, c: &Chunk{}}
	b.c.cols = make([]colVec, schema.Len())
	words := (capRows + 63) / 64
	for i := range b.c.cols {
		v := &b.c.cols[i]
		v.kind = schema.Col(i).Kind
		v.valid = make([]uint64, words)
		switch v.kind {
		case types.Int, types.Bool, types.Date:
			v.ints = make([]int64, 0, capRows)
		case types.Float:
			v.floats = make([]float64, 0, capRows)
		case types.Text:
			v.strs = make([]string, 0, capRows)
		}
	}
	return b
}

// appendRow adds one tuple. The tuple values must already match the
// schema kinds (null anywhere is fine) — the relation's Append/Update
// paths enforce that; appendRow rejects drift so a kind mismatch cannot
// be silently re-typed by the columnar encoding.
func (b *chunkBuilder) appendRow(tuple []types.Value) error {
	row := b.c.rows
	for i := range b.c.cols {
		v := &b.c.cols[i]
		val := tuple[i]
		if val.IsNull() {
			switch v.kind {
			case types.Int, types.Bool, types.Date:
				v.ints = append(v.ints, 0)
			case types.Float:
				v.floats = append(v.floats, 0)
			case types.Text:
				v.strs = append(v.strs, "")
			}
			continue
		}
		if val.Kind() != v.kind {
			return fmt.Errorf("rel: chunk column %q wants %s, got %s", b.schema.Col(i).Name, v.kind, val.Kind())
		}
		v.valid[row>>6] |= 1 << (uint(row) & 63)
		switch v.kind {
		case types.Int:
			v.ints = append(v.ints, val.Int())
		case types.Bool:
			var x int64
			if val.Bool() {
				x = 1
			}
			v.ints = append(v.ints, x)
		case types.Date:
			v.ints = append(v.ints, val.DateDays())
		case types.Float:
			v.floats = append(v.floats, val.Float())
		case types.Text:
			v.strs = append(v.strs, val.Text())
		}
	}
	b.c.rows++
	return nil
}

// finish seals and returns the chunk.
func (b *chunkBuilder) finish() *Chunk {
	words := (b.c.rows + 63) / 64
	for i := range b.c.cols {
		b.c.cols[i].valid = b.c.cols[i].valid[:words]
	}
	b.c.seal()
	return b.c
}

// encodeRows builds a chunk directly from a run of row-major tuples.
func encodeRows(schema *Schema, tuples [][]types.Value) (*Chunk, error) {
	b := newChunkBuilder(schema, len(tuples))
	for _, t := range tuples {
		if err := b.appendRow(t); err != nil {
			return nil, err
		}
	}
	return b.finish(), nil
}

// Chunk wire format (inside segment files):
//
//	u32 rows, u32 cols
//	per column: u8 kind, validity words (u64 LE), then the lane:
//	  Int/Bool/Date: rows × i64 LE
//	  Float:         rows × u64 LE (IEEE bits)
//	  Text:          rows × (u32 len, bytes)
//
// The encoding is canonical — no padding, map iteration, or pointer
// identity leaks into it — so an evicted chunk reloads byte-identically.

// appendChunk serializes c onto buf.
func appendChunk(buf []byte, c *Chunk) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.cols)))
	for i := range c.cols {
		v := &c.cols[i]
		buf = append(buf, byte(v.kind))
		for _, w := range v.valid {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		switch v.kind {
		case types.Int, types.Bool, types.Date:
			for _, x := range v.ints {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
			}
		case types.Float:
			for _, f := range v.floats {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
			}
		case types.Text:
			for _, s := range v.strs {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
		}
	}
	return buf
}

// decodeChunk parses one serialized chunk.
func decodeChunk(buf []byte) (*Chunk, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("rel: chunk truncated (%d bytes)", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf))
	ncols := int(binary.LittleEndian.Uint32(buf[4:]))
	if rows < 0 || ncols < 0 || rows > 1<<26 || ncols > 1<<16 {
		return nil, fmt.Errorf("rel: chunk header implausible (rows=%d cols=%d)", rows, ncols)
	}
	buf = buf[8:]
	words := (rows + 63) / 64
	c := &Chunk{rows: rows, cols: make([]colVec, ncols)}
	for i := 0; i < ncols; i++ {
		if len(buf) < 1+words*8 {
			return nil, fmt.Errorf("rel: chunk column %d truncated", i)
		}
		v := &c.cols[i]
		v.kind = types.Kind(buf[0])
		buf = buf[1:]
		v.valid = make([]uint64, words)
		for w := 0; w < words; w++ {
			v.valid[w] = binary.LittleEndian.Uint64(buf)
			buf = buf[8:]
		}
		switch v.kind {
		case types.Int, types.Bool, types.Date:
			if len(buf) < rows*8 {
				return nil, fmt.Errorf("rel: chunk column %d lane truncated", i)
			}
			v.ints = make([]int64, rows)
			for r := 0; r < rows; r++ {
				v.ints[r] = int64(binary.LittleEndian.Uint64(buf))
				buf = buf[8:]
			}
		case types.Float:
			if len(buf) < rows*8 {
				return nil, fmt.Errorf("rel: chunk column %d lane truncated", i)
			}
			v.floats = make([]float64, rows)
			for r := 0; r < rows; r++ {
				v.floats[r] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
				buf = buf[8:]
			}
		case types.Text:
			v.strs = make([]string, rows)
			for r := 0; r < rows; r++ {
				if len(buf) < 4 {
					return nil, fmt.Errorf("rel: chunk column %d string %d truncated", i, r)
				}
				n := int(binary.LittleEndian.Uint32(buf))
				buf = buf[4:]
				if n < 0 || len(buf) < n {
					return nil, fmt.Errorf("rel: chunk column %d string %d truncated", i, r)
				}
				v.strs[r] = string(buf[:n])
				buf = buf[n:]
			}
		default:
			return nil, fmt.Errorf("rel: chunk column %d has unknown kind %d", i, int(v.kind))
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("rel: chunk has %d trailing bytes", len(buf))
	}
	c.seal()
	return c, nil
}
