package rel

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/expr"
	"repro/internal/types"
)

// genCounter issues generation stamps process-wide. Every stamp is taken
// from this one counter, so a generation identifies a unique immutable
// snapshot of some relation's visible contents: two relations never share
// a stamp, and a relation never reuses one after a mutation. Downstream
// caches (the viewer's spatial cull index, display-list memo, and
// wormhole interior cache) key on generations instead of guessing at
// staleness. Stamps start at 1; 0 means "not yet assigned".
var genCounter atomic.Int64

// nextGen returns a fresh, never-before-issued generation stamp.
func nextGen() int64 { return genCounter.Add(1) }

// Computed is an attribute defined by an expression over other attributes
// of the same relation — the paper's "methods defining additional
// attributes" on an object-relational table (Section 2). Location
// attributes are typically computed (for example x = longitude).
type Computed struct {
	Name string
	Kind types.Kind
	Expr expr.Node
}

// Relation is a table: a stored schema, tuple storage, computed
// attributes, and optional secondary indexes on stored columns. Derived
// relations produced by operators share immutable tuple storage with their
// inputs where possible; only the db package mutates base tables, through
// Relation's update hooks.
type Relation struct {
	name     string
	schema   *Schema
	tuples   [][]types.Value
	computed []Computed
	indexes  map[string]*btree.Tree
	// cols, when non-nil, is the authoritative tuple storage: typed
	// columnar chunks (tuples stays nil). Chunk-backed relations come
	// from persistent backends via FromChunkSource; their chunks fault
	// in lazily through the bounded chunk cache. colStore values are
	// immutable, so CoW here is plain pointer replacement: mutators
	// install a new store sharing every untouched chunk slot.
	cols *colStore
	// colview caches a lazily-encoded columnar view of a row-major
	// relation, keyed by generation, so compiled predicate kernels can
	// run over contiguous arrays without the relation itself migrating.
	// The view's chunks are encoded on demand from the (immutable at
	// this generation) tuple slices and are freely evictable.
	colview atomic.Pointer[colView]
	// provenance: when set, tuple i of this relation derives from tuple
	// provRows[i] of provBase. Operators that keep tuples intact
	// (Restrict, Sample, Sort, Project, column maps) maintain it so a
	// screen object can be traced to a base-table row for updates
	// (Section 8); Join and Union drop it.
	provBase *Relation
	provRows []int
	// gen is the relation's generation stamp: 0 until first observed,
	// then a unique value from genCounter, replaced with a fresh one on
	// every content mutation. Accessed atomically so renders may read it
	// while other relations are being built.
	gen int64
}

// Generation returns the relation's generation stamp, assigning one on
// first observation (which also covers derivation: every relation built
// by an operator starts unstamped and receives a fresh stamp the first
// time a cache looks at it). Equal stamps imply identical visible
// contents; after any mutation the stamp differs from every stamp ever
// issued for any relation.
func (r *Relation) Generation() int64 {
	if g := atomic.LoadInt64(&r.gen); g != 0 {
		return g
	}
	g := nextGen()
	if atomic.CompareAndSwapInt64(&r.gen, 0, g) {
		return g
	}
	return atomic.LoadInt64(&r.gen)
}

// bumpGen invalidates the current stamp after a content mutation.
func (r *Relation) bumpGen() { atomic.StoreInt64(&r.gen, nextGen()) }

// setProv installs provenance, composing with the source's own provenance
// so BaseRow always reaches a base table in one hop chain.
func (r *Relation) setProv(src *Relation, rows []int) {
	if src.provBase != nil {
		base := src.provBase
		composed := make([]int, len(rows))
		for i, row := range rows {
			composed[i] = src.provRows[row]
		}
		r.provBase, r.provRows = base, composed
		return
	}
	r.provBase, r.provRows = src, rows
}

// BaseRow traces tuple i to its originating base relation and row. For a
// relation with no provenance (a base table itself, or the output of Join
// or Union) it returns the relation and i unchanged.
func (r *Relation) BaseRow(i int) (*Relation, int) {
	if r.provBase == nil || i < 0 || i >= len(r.provRows) {
		return r, i
	}
	return r.provBase, r.provRows[i]
}

// colView pairs a derived columnar encoding with the generation it was
// built from.
type colView struct {
	gen int64
	cs  *colStore
}

// New creates an empty relation with the given schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// FromChunkSource creates a chunk-backed relation over src: tuple
// storage lives in columnar chunks that fault in lazily through the
// bounded chunk cache, so the relation can be far larger than the
// memory quota. The relation participates in the normal CoW/versioning
// discipline — Append and Update replace only the affected chunk.
func FromChunkSource(name string, schema *Schema, src ChunkSource) (*Relation, error) {
	if src.ChunkRows() <= 0 {
		return nil, fmt.Errorf("rel: %s: chunk source reports %d rows per chunk", name, src.ChunkRows())
	}
	want := (src.Rows() + src.ChunkRows() - 1) / src.ChunkRows()
	if src.NumChunks() != want {
		return nil, fmt.Errorf("rel: %s: chunk source shape mismatch (%d chunks for %d rows at %d/chunk)",
			name, src.NumChunks(), src.Rows(), src.ChunkRows())
	}
	return &Relation{name: name, schema: schema, cols: newColStore(schema, src)}, nil
}

// ChunkBacked reports whether tuple storage is columnar chunks (true
// for relations loaded through a persistent backend) rather than
// resident row-major slices.
func (r *Relation) ChunkBacked() bool { return r.cols != nil }

// columnar returns a columnar view of the relation: the authoritative
// store for chunk-backed relations, or a generation-keyed lazily-encoded
// view for row-major ones. The view encodes chunks on demand, so taking
// it is cheap; kernels that never touch a chunk never pay for it.
func (r *Relation) columnar() *colStore {
	if r.cols != nil {
		return r.cols
	}
	g := r.Generation()
	if v := r.colview.Load(); v != nil && v.gen == g {
		return v.cs
	}
	cs := buildColStore(r.schema, r.tuples, DefaultChunkRows)
	r.colview.Store(&colView{gen: g, cs: cs})
	return cs
}

// storedValue reads stored column col of row i through whichever
// storage the relation uses. Chunk read errors (possible only on
// file-backed sources) degrade to null here; scan paths use rowReader,
// which carries a sticky error instead.
func (r *Relation) storedValue(i, col int) types.Value {
	if r.cols == nil {
		return r.tuples[i][col]
	}
	v, err := r.cols.value(i, col)
	if err != nil {
		return types.Null
	}
	return v
}

// tupleAt materializes row i from whichever storage the relation uses.
func (r *Relation) tupleAt(i int) ([]types.Value, error) {
	if r.cols == nil {
		return r.tuples[i], nil
	}
	ci, off := r.cols.rowChunk(i)
	c, err := r.cols.chunk(ci)
	if err != nil {
		return nil, err
	}
	return c.DecodeRow(off, make([]types.Value, 0, r.schema.Len())), nil
}

// rowReader is sequential row access for scan loops. For row-major
// relations it is a bounds-checked slice read; for chunk-backed ones it
// decodes a chunk at a time, pinning the current chunk so eviction
// cannot pull the arrays out from under the scan. Readers are cheap;
// parallel scans make one per worker.
type rowReader struct {
	r          *Relation
	ck         *Chunk
	ckLo, ckHi int
	buf        []types.Value
	err        error
}

// reader returns a fresh rowReader over r.
func (r *Relation) reader() rowReader { return rowReader{r: r, ckLo: -1, ckHi: -1} }

// seek positions the reader's chunk window over row i.
func (rd *rowReader) seek(i int) bool {
	cs := rd.r.cols
	ci, _ := cs.rowChunk(i)
	c, err := cs.chunk(ci)
	if err != nil {
		if rd.err == nil {
			rd.err = err
		}
		return false
	}
	rd.ck = c
	rd.ckLo, rd.ckHi = cs.chunkSpan(ci)
	return true
}

// at returns row i. For chunk-backed relations the slice is a scratch
// buffer valid only until the next at call; use take when the tuple is
// retained. On a chunk read error it returns a null-filled row and
// records the error for Err.
func (rd *rowReader) at(i int) []types.Value {
	if rd.r.cols == nil {
		return rd.r.tuples[i]
	}
	if i < rd.ckLo || i >= rd.ckHi {
		if !rd.seek(i) {
			return rd.nullRow()
		}
	}
	rd.buf = rd.ck.DecodeRow(i-rd.ckLo, rd.buf[:0])
	return rd.buf
}

// take returns row i as a slice safe to retain and share: the stored
// slice itself for row-major relations (frozen by convention), a fresh
// decode for chunk-backed ones.
func (rd *rowReader) take(i int) []types.Value {
	if rd.r.cols == nil {
		return rd.r.tuples[i]
	}
	if i < rd.ckLo || i >= rd.ckHi {
		if !rd.seek(i) {
			return rd.nullRow()
		}
	}
	return rd.ck.DecodeRow(i-rd.ckLo, make([]types.Value, 0, rd.r.schema.Len()))
}

// value reads one stored column of row i without decoding the row.
func (rd *rowReader) value(i, col int) types.Value {
	if rd.r.cols == nil {
		return rd.r.tuples[i][col]
	}
	if i < rd.ckLo || i >= rd.ckHi {
		if !rd.seek(i) {
			return types.Null
		}
	}
	return rd.ck.Value(col, i-rd.ckLo)
}

// Err reports the first chunk read error the reader hit, if any.
func (rd *rowReader) Err() error { return rd.err }

func (rd *rowReader) nullRow() []types.Value {
	if cap(rd.buf) < rd.r.schema.Len() {
		rd.buf = make([]types.Value, rd.r.schema.Len())
	}
	rd.buf = rd.buf[:rd.r.schema.Len()]
	for i := range rd.buf {
		rd.buf[i] = types.Null
	}
	return rd.buf
}

// Name returns the relation's name ("" for anonymous derived relations).
func (r *Relation) Name() string { return r.name }

// Schema returns the stored-column schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if r.cols != nil {
		return r.cols.rows
	}
	return len(r.tuples)
}

// Computed returns the computed attribute definitions in order.
func (r *Relation) Computed() []Computed { return append([]Computed(nil), r.computed...) }

// AttrKind implements expr.Scope over stored and computed attributes — the
// uniform t.l notation of the paper.
func (r *Relation) AttrKind(name string) (types.Kind, bool) {
	if k, ok := r.schema.KindOf(name); ok {
		return k, true
	}
	for _, c := range r.computed {
		if c.Name == name {
			return c.Kind, true
		}
	}
	return types.Invalid, false
}

// HasAttr reports whether name is a stored or computed attribute.
func (r *Relation) HasAttr(name string) bool {
	_, ok := r.AttrKind(name)
	return ok
}

// AttrNames returns all attribute names, stored first, then computed in
// definition order.
func (r *Relation) AttrNames() []string {
	out := make([]string, 0, r.schema.Len()+len(r.computed))
	for _, c := range r.schema.Columns() {
		out = append(out, c.Name)
	}
	for _, c := range r.computed {
		out = append(out, c.Name)
	}
	return out
}

// Append adds a tuple. The tuple must match the schema arity and types
// (null is accepted in any column).
func (r *Relation) Append(tuple []types.Value) error {
	if len(tuple) != r.schema.Len() {
		return fmt.Errorf("rel: %s: tuple arity %d != schema arity %d", r.name, len(tuple), r.schema.Len())
	}
	for i, v := range tuple {
		if !v.IsNull() && v.Kind() != r.schema.Col(i).Kind {
			return fmt.Errorf("rel: %s: column %q wants %s, got %s",
				r.name, r.schema.Col(i).Name, r.schema.Col(i).Kind, v.Kind())
		}
	}
	row := r.Len()
	if r.cols != nil {
		cs, err := r.cols.withAppend(tuple)
		if err != nil {
			return fmt.Errorf("rel: %s: %w", r.name, err)
		}
		r.cols = cs
	} else {
		r.tuples = append(r.tuples, tuple)
	}
	for col, idx := range r.indexes {
		v := tuple[r.schema.Index(col)]
		if !v.IsNull() {
			idx.Insert(v, row)
		}
	}
	r.bumpGen()
	return nil
}

// MustAppend is Append that panics on error, for fixtures and generators.
func (r *Relation) MustAppend(tuple []types.Value) {
	if err := r.Append(tuple); err != nil {
		panic(err)
	}
}

// Tuple returns the i'th stored tuple. The returned slice must not be
// mutated; use Update. For chunk-backed relations it decodes a fresh
// slice; a chunk read error (file-backed sources only) panics, matching
// the out-of-range behavior of the slice read — bulk paths that want an
// error use a reader or Cursor instead.
func (r *Relation) Tuple(i int) []types.Value {
	t, err := r.tupleAt(i)
	if err != nil {
		panic(fmt.Sprintf("rel: %s: reading tuple %d: %v", r.name, i, err))
	}
	return t
}

// Row binds tuple i to the relation for attribute access; it implements
// expr.Env including computed attributes.
func (r *Relation) Row(i int) Row { return Row{rel: r, idx: i} }

// Update replaces column col of tuple row with v, maintaining indexes.
// This is the primitive beneath the Section 8 update machinery.
func (r *Relation) Update(row int, col string, v types.Value) error {
	ci := r.schema.Index(col)
	if ci < 0 {
		return fmt.Errorf("rel: %s: no stored column %q (computed attributes cannot be updated)", r.name, col)
	}
	if row < 0 || row >= r.Len() {
		return fmt.Errorf("rel: %s: row %d out of range", r.name, row)
	}
	if !v.IsNull() && v.Kind() != r.schema.Col(ci).Kind {
		return fmt.Errorf("rel: %s: column %q wants %s, got %s", r.name, col, r.schema.Col(ci).Kind, v.Kind())
	}
	old := r.storedValue(row, ci)
	if idx, ok := r.indexes[col]; ok {
		if !old.IsNull() {
			idx.Delete(old, row)
		}
		if !v.IsNull() {
			idx.Insert(v, row)
		}
	}
	if r.cols != nil {
		// Copy-on-write the affected chunk; every other chunk slot is
		// shared with the previous version.
		cs, err := r.cols.withUpdate(row, ci, v)
		if err != nil {
			return fmt.Errorf("rel: %s: %w", r.name, err)
		}
		r.cols = cs
		r.bumpGen()
		return nil
	}
	// Copy-on-write the tuple so derived relations sharing storage keep a
	// consistent view until re-evaluated.
	nt := append([]types.Value(nil), r.tuples[row]...)
	nt[ci] = v
	r.tuples[row] = nt
	r.bumpGen()
	return nil
}

// CreateIndex builds a B-tree index on a stored column.
func (r *Relation) CreateIndex(col string) error {
	ci := r.schema.Index(col)
	if ci < 0 {
		return fmt.Errorf("rel: %s: cannot index %q: no such stored column", r.name, col)
	}
	if r.indexes == nil {
		r.indexes = make(map[string]*btree.Tree)
	}
	if _, dup := r.indexes[col]; dup {
		return fmt.Errorf("rel: %s: index on %q already exists", r.name, col)
	}
	t := &btree.Tree{}
	rd := r.reader()
	for row, n := 0, r.Len(); row < n; row++ {
		if v := rd.value(row, ci); !v.IsNull() {
			t.Insert(v, row)
		}
	}
	if err := rd.Err(); err != nil {
		return fmt.Errorf("rel: %s: indexing %q: %w", r.name, col, err)
	}
	r.indexes[col] = t
	return nil
}

// Index returns the index on col, if any.
func (r *Relation) Index(col string) (*btree.Tree, bool) {
	t, ok := r.indexes[col]
	return t, ok
}

// AddComputed defines a new computed attribute. The definition may depend
// only on other attributes of the relation (Section 5.3); this is enforced
// by type checking against the relation's current scope, which also
// prevents definition cycles because an attribute can only reference
// attributes that already exist.
func (r *Relation) AddComputed(name string, def expr.Node) error {
	if r.HasAttr(name) {
		return fmt.Errorf("rel: %s: attribute %q already exists", r.name, name)
	}
	k, err := expr.Check(def, r)
	if err != nil {
		return fmt.Errorf("rel: %s: bad definition for %q: %w", r.name, name, err)
	}
	r.computed = append(r.computed, Computed{Name: name, Kind: k, Expr: def})
	r.bumpGen()
	return nil
}

// SetComputed replaces the definition of an existing computed attribute
// (the Set Attribute operation of Figure 5 applied to a method attribute).
// The new definition is checked against a scope that excludes the
// attribute itself and everything defined after it, preserving the no-
// forward-reference invariant.
func (r *Relation) SetComputed(name string, def expr.Node) error {
	for i, c := range r.computed {
		if c.Name != name {
			continue
		}
		k, err := expr.Check(def, prefixScope{r: r, upto: i})
		if err != nil {
			return fmt.Errorf("rel: %s: bad definition for %q: %w", r.name, name, err)
		}
		if k != c.Kind {
			// Changing the kind is allowed only if no later computed
			// attribute references this one with the old kind.
			for _, later := range r.computed[i+1:] {
				for _, ref := range expr.Refs(later.Expr) {
					if ref == name {
						return fmt.Errorf("rel: %s: cannot change %q from %s to %s: %q depends on it",
							r.name, name, c.Kind, k, later.Name)
					}
				}
			}
		}
		r.computed[i] = Computed{Name: name, Kind: k, Expr: def}
		r.bumpGen()
		return nil
	}
	return fmt.Errorf("rel: %s: no computed attribute %q", r.name, name)
}

// RemoveComputed deletes a computed attribute, refusing if a later
// computed attribute depends on it.
func (r *Relation) RemoveComputed(name string) error {
	for i, c := range r.computed {
		if c.Name != name {
			continue
		}
		for _, later := range r.computed[i+1:] {
			for _, ref := range expr.Refs(later.Expr) {
				if ref == name {
					return fmt.Errorf("rel: %s: cannot remove %q: %q depends on it", r.name, name, later.Name)
				}
			}
		}
		r.computed = append(r.computed[:i], r.computed[i+1:]...)
		r.bumpGen()
		return nil
	}
	return fmt.Errorf("rel: %s: no computed attribute %q", r.name, name)
}

// prefixScope exposes stored columns plus the first upto computed
// attributes, for checking redefinitions.
type prefixScope struct {
	r    *Relation
	upto int
}

// AttrKind implements expr.Scope.
func (p prefixScope) AttrKind(name string) (types.Kind, bool) {
	if k, ok := p.r.schema.KindOf(name); ok {
		return k, true
	}
	for _, c := range p.r.computed[:p.upto] {
		if c.Name == name {
			return c.Kind, true
		}
	}
	return types.Invalid, false
}

// ShallowClone returns a relation sharing tuple storage but with private
// computed-attribute definitions, so attribute boxes can extend a derived
// relation without mutating their input. Indexes are not carried (they
// belong to base tables).
func (r *Relation) ShallowClone() *Relation {
	return &Relation{
		name:     r.name,
		schema:   r.schema,
		tuples:   r.tuples,
		cols:     r.cols,
		computed: append([]Computed(nil), r.computed...),
		provBase: r.provBase,
		provRows: r.provRows,
	}
}

// Clone returns a relation with copied tuple storage and attribute
// definitions, used by the undo machinery and by Replace Box.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		name:     r.name,
		schema:   r.schema,
		computed: append([]Computed(nil), r.computed...),
	}
	if r.cols != nil {
		// Chunks are immutable, so sharing the store IS a deep copy:
		// no future mutation of either relation can reach the other.
		out.cols = r.cols
		return out
	}
	out.tuples = make([][]types.Value, len(r.tuples))
	for i, t := range r.tuples {
		out.tuples[i] = append([]types.Value(nil), t...)
	}
	return out
}

// CowClone returns a copy-on-write clone for the db write path: the
// outer tuples slice, the computed-attribute list, and the secondary
// indexes are fresh, while the per-row tuple slices are shared with the
// original. Because Update already replaces a row's slice instead of
// mutating it in place, any mutation applied to the clone — Append,
// Update, computed-attribute edits, index maintenance — is invisible to
// holders of the original: the clone is the next version of the table,
// the original remains an immutable snapshot. Cost is O(rows) pointer
// copies plus an index copy, versus Clone's O(rows × cols) value
// copies. The clone starts unstamped, so the first cache to observe it
// receives a fresh generation. Chunk-backed storage needs no copy at
// all: colStore values are immutable, so sharing the pointer is CoW —
// mutators install a new store that shares every untouched chunk slot.
func (r *Relation) CowClone() *Relation {
	out := &Relation{
		name:     r.name,
		schema:   r.schema,
		tuples:   append([][]types.Value(nil), r.tuples...),
		cols:     r.cols,
		computed: append([]Computed(nil), r.computed...),
		provBase: r.provBase,
		provRows: r.provRows,
	}
	if r.indexes != nil {
		out.indexes = make(map[string]*btree.Tree, len(r.indexes))
		for col, idx := range r.indexes {
			out.indexes[col] = idx.Clone()
		}
	}
	return out
}

// derive builds an anonymous relation sharing this relation's computed
// attributes but with new tuple storage; operators use it.
func (r *Relation) derive(schema *Schema, keepComputed bool) *Relation {
	out := &Relation{schema: schema}
	if keepComputed {
		// Keep only computed attributes whose references survive in the
		// new schema or in earlier surviving computed attributes.
		for _, c := range r.computed {
			ok := true
			for _, ref := range expr.Refs(c.Expr) {
				if !out.HasAttr(ref) && !schemaHas(schema, ref) {
					ok = false
					break
				}
			}
			if ok && !schemaHas(schema, c.Name) {
				out.computed = append(out.computed, c)
			}
		}
	}
	return out
}

func schemaHas(s *Schema, name string) bool { return s.Has(name) }

// String renders a compact description for program-window labels.
func (r *Relation) String() string {
	name := r.name
	if name == "" {
		name = "<derived>"
	}
	extra := ""
	if len(r.computed) > 0 {
		names := make([]string, len(r.computed))
		for i, c := range r.computed {
			names[i] = c.Name
		}
		extra = " +" + strings.Join(names, ",")
	}
	return fmt.Sprintf("%s%s%s [%d tuples]", name, r.schema, extra, r.Len())
}

// Row is one tuple bound to its relation; it implements expr.Env over
// stored and computed attributes. Computed attributes are evaluated on
// demand — "actually computing the values of these attributes should be
// avoided except where necessary" (Section 5.1) — so a Row held by a
// culled tuple costs nothing.
type Row struct {
	rel *Relation
	idx int
}

// Index returns the row's position in the relation.
func (w Row) Index() int { return w.idx }

// Relation returns the owning relation.
func (w Row) Relation() *Relation { return w.rel }

// AttrValue implements expr.Env.
func (w Row) AttrValue(name string) (types.Value, bool) {
	if i := w.rel.schema.Index(name); i >= 0 {
		return w.rel.storedValue(w.idx, i), true
	}
	for _, c := range w.rel.computed {
		if c.Name == name {
			v, err := expr.Eval(c.Expr, w)
			if err != nil {
				return types.Null, true // null on evaluation failure, attribute exists
			}
			return v, true
		}
	}
	return types.Null, false
}

// Attr returns the named attribute value, or null if absent.
func (w Row) Attr(name string) types.Value {
	v, _ := w.AttrValue(name)
	return v
}

// rowCursor is a reusable expr.Env over one relation: scans rebind idx
// per row instead of boxing a fresh Row into the interface every
// iteration, so the interpreted fallback paths allocate once per scan.
// Semantics match Row.AttrValue exactly, including the evaluate-to-null
// swallowing of computed-attribute errors. Stored-column access goes
// through an embedded rowReader so one chunk decode serves a whole run
// of rows on chunk-backed relations.
type rowCursor struct {
	rel *Relation
	idx int
	rd  rowReader
}

func newRowCursor(r *Relation) *rowCursor {
	return &rowCursor{rel: r, rd: r.reader()}
}

// AttrValue implements expr.Env.
func (c *rowCursor) AttrValue(name string) (types.Value, bool) {
	if i := c.rel.schema.Index(name); i >= 0 {
		if c.rd.r == nil {
			c.rd = c.rel.reader()
		}
		return c.rd.value(c.idx, i), true
	}
	for _, cc := range c.rel.computed {
		if cc.Name == name {
			v, err := expr.Eval(cc.Expr, c)
			if err != nil {
				return types.Null, true
			}
			return v, true
		}
	}
	return types.Null, false
}

// Cursor is the public sequential-access companion of Row: it walks a
// relation row by row, decoding one chunk at a time on chunk-backed
// relations and pinning the current chunk against eviction while it is
// in use. It implements expr.Env with Row's exact semantics, so display
// functions evaluate against it unchanged. Viewers use a Cursor for
// their per-frame sweeps (cull, spatial-index build, display eval)
// instead of per-row Row bindings.
type Cursor struct {
	c rowCursor
}

// NewCursor returns a cursor positioned before the first row; call Seek
// before reading.
func (r *Relation) NewCursor() *Cursor {
	return &Cursor{c: rowCursor{rel: r, idx: -1, rd: r.reader()}}
}

// Seek positions the cursor on row i.
func (cu *Cursor) Seek(i int) { cu.c.idx = i }

// Index returns the current row position.
func (cu *Cursor) Index() int { return cu.c.idx }

// AttrValue implements expr.Env at the current row.
func (cu *Cursor) AttrValue(name string) (types.Value, bool) { return cu.c.AttrValue(name) }

// Attr returns the named attribute at the current row, or null.
func (cu *Cursor) Attr(name string) types.Value {
	v, _ := cu.c.AttrValue(name)
	return v
}

// Err reports the first chunk read error the cursor hit, if any.
func (cu *Cursor) Err() error { return cu.c.rd.Err() }
