package rel

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

func genRel(t testing.TB) *Relation {
	t.Helper()
	r := New("G", MustSchema(
		Column{Name: "id", Kind: types.Int},
		Column{Name: "x", Kind: types.Float},
	))
	for i := 0; i < 3; i++ {
		r.MustAppend([]types.Value{types.NewInt(int64(i)), types.NewFloat(float64(i))})
	}
	return r
}

func TestGenerationStableWithoutMutation(t *testing.T) {
	r := genRel(t)
	g := r.Generation()
	if g == 0 {
		t.Fatal("generation 0: the unassigned sentinel leaked out")
	}
	for i := 0; i < 5; i++ {
		if got := r.Generation(); got != g {
			t.Fatalf("generation moved from %d to %d without mutation", g, got)
		}
	}
}

func TestGenerationUniqueAcrossRelations(t *testing.T) {
	a, b := genRel(t), genRel(t)
	if a.Generation() == b.Generation() {
		t.Fatal("two relations share a generation stamp")
	}
}

func TestGenerationBumpsOnMutation(t *testing.T) {
	r := genRel(t)
	last := r.Generation()
	step := func(name string, mutate func() error) {
		t.Helper()
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g := r.Generation()
		if g <= last {
			t.Fatalf("%s: generation %d did not advance past %d", name, g, last)
		}
		last = g
	}
	step("Append", func() error {
		return r.Append([]types.Value{types.NewInt(9), types.NewFloat(9)})
	})
	step("Update", func() error {
		return r.Update(0, "x", types.NewFloat(42))
	})
	step("AddComputed", func() error {
		n, err := expr.Parse("x + 1")
		if err != nil {
			return err
		}
		return r.AddComputed("y", n)
	})
	step("SetComputed", func() error {
		n, err := expr.Parse("x + 2")
		if err != nil {
			return err
		}
		return r.SetComputed("y", n)
	})
	step("RemoveComputed", func() error {
		return r.RemoveComputed("y")
	})
}

func TestCloneGetsFreshGeneration(t *testing.T) {
	r := genRel(t)
	g := r.Generation()
	if c := r.Clone(); c.Generation() == g {
		t.Fatal("Clone shares the source's generation")
	}
	if c := r.ShallowClone(); c.Generation() == g {
		t.Fatal("ShallowClone shares the source's generation")
	}
	// Cloning must not disturb the source's stamp.
	if got := r.Generation(); got != g {
		t.Fatalf("source generation moved from %d to %d on clone", g, got)
	}
}

func TestDerivedRelationsGetFreshGenerations(t *testing.T) {
	r := genRel(t)
	g := r.Generation()
	pred, err := expr.Parse("true")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Restrict(r, pred)
	if err != nil {
		t.Fatal(err)
	}
	if d.Generation() == g {
		t.Fatal("derived relation shares the source's generation")
	}
}
