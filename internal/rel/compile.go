package rel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/types"
)

// This file wires the expression compiler (internal/expr/compile.go) into
// the relational operators and provides the chunked parallel-scan
// machinery they share. Compilation is best-effort: every call site keeps
// the interpreted path as a fallback, and the ablation knobs below turn
// the fast paths off wholesale so benchmarks can measure them.

// DefaultScanThreshold is the row count below which scans stay
// single-threaded: chunk bookkeeping and goroutine handoff cost more than
// they save on small relations.
const DefaultScanThreshold = 4096

var (
	compileOff    atomic.Bool
	scanWorkers   atomic.Int64 // 0 = GOMAXPROCS
	scanThreshold atomic.Int64 // 0 = DefaultScanThreshold
)

// SetCompileDisabled turns expression compilation off (true) or on
// (false) process-wide and returns the previous setting. With compilation
// off every operator takes its interpreted path — the ablation baseline.
func SetCompileDisabled(off bool) bool { return compileOff.Swap(off) }

// CompileDisabled reports whether expression compilation is disabled.
func CompileDisabled() bool { return compileOff.Load() }

// SetScanWorkers sets the worker count for parallel scans and returns the
// previous setting. Zero or negative means GOMAXPROCS; one disables
// parallel scans.
func SetScanWorkers(n int) int { return int(scanWorkers.Swap(int64(n))) }

// ScanWorkers returns the configured scan worker count (0 = GOMAXPROCS).
func ScanWorkers() int { return int(scanWorkers.Load()) }

// SetScanThreshold sets the minimum row count for parallel scans and
// returns the previous setting. Zero or negative restores the default.
func SetScanThreshold(n int) int { return int(scanThreshold.Swap(int64(n))) }

// ScanThreshold returns the effective parallel-scan row threshold.
func ScanThreshold() int {
	if t := int(scanThreshold.Load()); t > 0 {
		return t
	}
	return DefaultScanThreshold
}

// effectiveWorkers resolves a caller-requested worker count (0 = inherit
// the package setting, which itself defaults to GOMAXPROCS).
func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	if w := int(scanWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// scanChunks decides how many contiguous chunks an n-row scan splits
// into: 1 (serial) below the threshold or with one worker, else up to the
// effective worker count.
func scanChunks(n, workers int) int {
	w := effectiveWorkers(workers)
	if w <= 1 || n < ScanThreshold() {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// runChunks runs fn over [0, n) split into the given number of contiguous
// chunks, concurrently when chunks > 1. Output determinism is the
// caller's job (chunks are contiguous and ordered, so concatenating
// per-chunk results in chunk order reproduces the serial order). Error
// determinism is guaranteed here: fn stops a chunk at its first failure
// and runChunks returns the error of the lowest-numbered failed chunk —
// every row before that failure, in this or any lower chunk, succeeded,
// so the reported error is the one a serial scan would have hit first.
func runChunks(n, chunks int, fn func(chunk, lo, hi int) error) error {
	if chunks <= 1 {
		return fn(0, 0, n)
	}
	obs.Add(obs.RelScanChunks, int64(chunks))
	size := (n + chunks - 1) / chunks
	errs := make([]error, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			errs[c] = fn(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// matScope adapts a relation to expr.CompileScope: stored columns
// resolve to their tuple ordinal and computed attributes listed in mat
// resolve to their materialized slot past the stored columns (see
// matPlan). Computed attributes outside mat inline their definitions
// (with the same evaluate-to-null error swallowing as Row).
type matScope struct {
	r   *Relation
	mat map[string]int
}

// ResolveAttr implements expr.CompileScope.
func (s matScope) ResolveAttr(name string) (int, expr.Node, bool) {
	if i := s.r.schema.Index(name); i >= 0 {
		return i, nil, true
	}
	if j, ok := s.mat[name]; ok {
		return j, nil, true
	}
	for _, c := range s.r.computed {
		if c.Name == name {
			return -1, c.Expr, true
		}
	}
	return -1, nil, false
}

// matPlan materializes computed attributes once per row. Inlining a
// computed definition at every Ref re-evaluates it per reference — the
// same asymptotic work as the interpreter. The plan instead extends each
// tuple with the referenced computed attributes, evaluated once in
// definition order (AddComputed guarantees definitions only reference
// stored columns and earlier computed attributes), and the main
// expression compiles against the extended layout where those names are
// plain slot reads.
type matPlan struct {
	comps []*expr.Compiled
}

// extend appends the plan's computed values to t inside scratch (reused
// across rows; pass the returned slice back in). A definition that fails
// evaluates to null, exactly like a computed Ref through an Env.
func (m *matPlan) extend(t, scratch []types.Value) []types.Value {
	ext := append(scratch[:0], t...)
	for _, c := range m.comps {
		v, err := c.Eval(ext)
		if err != nil {
			v = types.Null
		}
		ext = append(ext, v)
	}
	return ext
}

// buildMat plans materialization for the computed attributes
// transitively referenced by nodes: the map gives each its extended
// ordinal for matScope, the plan evaluates them per row. Returns nils
// when nothing is referenced or a definition fails to compile (the
// caller then compiles with plain inlining or falls back entirely).
func (r *Relation) buildMat(nodes ...expr.Node) (*matPlan, map[string]int) {
	if len(r.computed) == 0 {
		return nil, nil
	}
	defs := make(map[string]expr.Node, len(r.computed))
	for _, c := range r.computed {
		defs[c.Name] = c.Expr
	}
	need := make(map[string]bool)
	var visit func(n expr.Node)
	visit = func(n expr.Node) {
		for _, name := range expr.Refs(n) {
			if def, ok := defs[name]; ok && !need[name] {
				need[name] = true
				visit(def)
			}
		}
	}
	for _, n := range nodes {
		visit(n)
	}
	if len(need) == 0 {
		return nil, nil
	}
	width := r.schema.Len()
	plan := &matPlan{comps: make([]*expr.Compiled, 0, len(need))}
	mat := make(map[string]int, len(need))
	for _, c := range r.computed {
		if !need[c.Name] {
			continue
		}
		// mat holds only earlier names here, so a definition compiles
		// against the slots already materialized when it runs.
		ce, err := expr.Compile(c.Expr, matScope{r: r, mat: mat})
		if err != nil {
			return nil, nil
		}
		mat[c.Name] = width + len(plan.comps)
		plan.comps = append(plan.comps, ce)
	}
	return plan, mat
}

// compiledPred is a compiled predicate plus its materialization plan.
type compiledPred struct {
	p   *expr.CompiledPredicate
	mat *matPlan
}

// eval evaluates the predicate over tuple t; scratch is the caller's
// reusable materialization buffer (one per goroutine), returned possibly
// grown for the next row.
func (cp *compiledPred) eval(t, scratch []types.Value) (bool, []types.Value, error) {
	if cp.mat != nil {
		scratch = cp.mat.extend(t, scratch)
		t = scratch
	}
	ok, err := cp.p.Eval(t)
	return ok, scratch, err
}

// compiledExpr is a compiled expression plus its materialization plan.
type compiledExpr struct {
	e   *expr.Compiled
	mat *matPlan
}

// eval mirrors compiledPred.eval for value-producing expressions.
func (ce *compiledExpr) eval(t, scratch []types.Value) (types.Value, []types.Value, error) {
	if ce.mat != nil {
		scratch = ce.mat.extend(t, scratch)
		t = scratch
	}
	v, err := ce.e.Eval(t)
	return v, scratch, err
}

// compilePredicate compiles pred against the relation's tuple layout, or
// returns nil when compilation is disabled or fails (use the interpreter).
func (r *Relation) compilePredicate(pred expr.Node) *compiledPred {
	if compileOff.Load() {
		return nil
	}
	plan, mat := r.buildMat(pred)
	p, err := expr.CompilePredicate(pred, matScope{r: r, mat: mat})
	if err != nil {
		return nil
	}
	obs.Inc(obs.RelCompile)
	return &compiledPred{p: p, mat: plan}
}

// compileExpr compiles def against the relation's tuple layout, or
// returns nil when compilation is disabled or fails.
func (r *Relation) compileExpr(def expr.Node) *compiledExpr {
	if compileOff.Load() {
		return nil
	}
	plan, mat := r.buildMat(def)
	e, err := expr.Compile(def, matScope{r: r, mat: mat})
	if err != nil {
		return nil
	}
	obs.Inc(obs.RelCompile)
	return &compiledExpr{e: e, mat: plan}
}
