// Package rel implements the relational half of the Tioga-2 substrate: an
// object-relational table model with stored attributes and computed
// ("method") attributes defined by expressions, the database operations of
// Figure 3 (Project, Restrict, Sample, Join), and the attribute operations
// of Figure 5 (Add/Remove/Set/Swap/Scale/Translate Attribute). The
// visualization-specific designation of location and display attributes
// lives one layer up, in internal/display.
package rel

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Column is one stored attribute: a name and an atomic type.
type Column struct {
	Name string
	Kind types.Kind
}

// Schema is an ordered list of stored columns. Schemas are immutable after
// construction; operators derive new schemas.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema, rejecting duplicate or empty column names.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("rel: column %d has empty name", i)
		}
		if c.Kind == types.Invalid {
			return nil, fmt.Errorf("rel: column %q has invalid type", c.Name)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("rel: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for fixtures.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of stored columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i'th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// KindOf returns the type of the named column.
func (s *Schema) KindOf(name string) (types.Kind, bool) {
	i := s.Index(name)
	if i < 0 {
		return types.Invalid, false
	}
	return s.cols[i].Kind, true
}

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Equal reports whether two schemas have identical columns in order. Edge
// type compatibility in the dataflow graph reduces to schema equality for
// relation-typed ports.
func (s *Schema) Equal(t *Schema) bool {
	if s == nil || t == nil {
		return s == t
	}
	if len(s.cols) != len(t.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != t.cols[i] {
			return false
		}
	}
	return true
}

// project returns the schema restricted to the named columns, in the given
// order.
func (s *Schema) project(names []string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("rel: project: no column %q in %s", n, s)
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...)
}
