package rel

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

// withQuota points the global chunk cache at a temporary quota, dropping
// resident chunks and zeroing stats on both edges so tests see only
// their own traffic.
func withQuota(t testing.TB, quota int64) {
	t.Helper()
	prev := MemoryQuota()
	DropResidentChunks()
	SetMemoryQuota(quota)
	ResetChunkCacheStats()
	t.Cleanup(func() {
		SetMemoryQuota(prev)
		DropResidentChunks()
		ResetChunkCacheStats()
	})
}

// sameRows asserts two relations hold identical tuples (values and
// kinds) in identical order.
func sameRows(t *testing.T, got, want *Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%d rows, want %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		gt, wt := got.Tuple(i), want.Tuple(i)
		for c := range wt {
			if keyOf(gt[c]) != keyOf(wt[c]) || gt[c].Kind() != wt[c].Kind() {
				t.Fatalf("row %d col %d: %v, want %v", i, c, gt[c], wt[c])
			}
		}
	}
}

func backends(t *testing.T) map[string]Backend {
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"mem": NewMemBackend(), "file": fb}
}

// TestBackendSegmentRoundTrip writes a mixed-kind relation through each
// backend and reopens it chunk-backed; every tuple must survive, along
// with blob and listing plumbing.
func TestBackendSegmentRoundTrip(t *testing.T) {
	src := kernelRelation(t, 3*DefaultChunkRows/2)
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.WriteSegment("tbl", src); err != nil {
				t.Fatal(err)
			}
			cs, err := b.OpenSegment("tbl", src.Schema())
			if err != nil {
				t.Fatal(err)
			}
			got, err := FromChunkSource("K", src.Schema(), cs)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, got, src)

			if _, err := b.OpenSegment("nope", src.Schema()); !errors.Is(err, ErrNoSegment) {
				t.Fatalf("open missing segment: %v", err)
			}
			if err := b.PutBlob("meta", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			if d, err := b.GetBlob("meta"); err != nil || string(d) != "hello" {
				t.Fatalf("blob roundtrip: %q, %v", d, err)
			}
			if _, err := b.GetBlob("nope"); !errors.Is(err, ErrNoSegment) {
				t.Fatalf("get missing blob: %v", err)
			}
			segs, err := b.Segments()
			if err != nil || len(segs) != 1 || segs[0] != "tbl" {
				t.Fatalf("segments: %v, %v", segs, err)
			}
			if err := b.RemoveSegment("tbl"); err != nil {
				t.Fatal(err)
			}
			if err := b.RemoveSegment("tbl"); err != nil {
				t.Fatalf("double remove: %v", err)
			}
			if segs, _ := b.Segments(); len(segs) != 0 {
				t.Fatalf("segments after remove: %v", segs)
			}
		})
	}
}

// TestBackendEvictedChunksReloadByteIdentical is the satellite property:
// drop every resident chunk between reads and the re-faulted encodings
// must match the originals byte for byte.
func TestBackendEvictedChunksReloadByteIdentical(t *testing.T) {
	withQuota(t, 1<<20)
	src := kernelRelation(t, 3000)
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.WriteSegment("tbl", src); err != nil {
				t.Fatal(err)
			}
			cs, err := b.OpenSegment("tbl", src.Schema())
			if err != nil {
				t.Fatal(err)
			}
			first := make([][]byte, cs.NumChunks())
			for ci := range first {
				ck, err := cs.ReadChunk(ci)
				if err != nil {
					t.Fatal(err)
				}
				first[ci] = appendChunk(nil, ck)
			}
			DropResidentChunks()
			for ci := range first {
				ck, err := cs.ReadChunk(ci)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(appendChunk(nil, ck), first[ci]) {
					t.Fatalf("chunk %d drifted across eviction and reload", ci)
				}
			}
		})
	}
}

// TestBackendDetectsCorruption flips one byte inside a chunk and
// truncates the image; both must surface ErrBadSegment, not garbage.
func TestBackendDetectsCorruption(t *testing.T) {
	src := kernelRelation(t, 600)
	b := NewMemBackend()
	if err := b.WriteSegment("tbl", src); err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), b.segs["tbl"]...)

	flipped := append([]byte(nil), img...)
	flipped[30] ^= 0xff // inside chunk 0's payload
	b.segs["tbl"] = flipped
	cs, err := b.OpenSegment("tbl", src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.ReadChunk(0); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("corrupt chunk read: %v", err)
	}

	b.segs["tbl"] = img[:len(img)-4]
	if _, err := b.OpenSegment("tbl", src.Schema()); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("truncated open: %v", err)
	}

	b.segs["tbl"] = []byte("not a segment at all........................")
	if _, err := b.OpenSegment("tbl", src.Schema()); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("foreign image open: %v", err)
	}
}

// TestBoundedMemoryScan is the headline bounded-memory property: a
// dataset roughly 4x the quota scans (restrict + join) correctly under
// eviction churn, and the cache's peak never exceeds the quota.
func TestBoundedMemoryScan(t *testing.T) {
	src := kernelRelation(t, 6*DefaultChunkRows)
	var probe bytes.Buffer
	if err := writeSegmentTo(&probe, src); err != nil {
		t.Fatal(err)
	}
	quota := int64(probe.Len()) / 4
	withQuota(t, quota)

	b := NewMemBackend()
	if err := b.WriteSegment("tbl", src); err != nil {
		t.Fatal(err)
	}
	DropResidentChunks() // WriteSegment faulted the source's own chunks
	ResetChunkCacheStats()
	cs, err := b.OpenSegment("tbl", src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	big, err := FromChunkSource("K", src.Schema(), cs)
	if err != nil {
		t.Fatal(err)
	}

	pred := expr.MustParse("b != 0 and a / b >= 0")
	var want *Relation
	withInterpreter(t, func() {
		want, err = Restrict(src, pred)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		got, err := Restrict(big, pred)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, got, want)
	}

	dim := New("dim", MustSchema(
		Column{Name: "a", Kind: types.Int},
		Column{Name: "label", Kind: types.Text},
	))
	for i := -10; i <= 10; i++ {
		dim.MustAppend([]types.Value{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("g%d", i))})
	}
	jp := expr.MustParse("a = a_r")
	j, err := Join(big, dim, jp, JoinAuto)
	if err != nil {
		t.Fatal(err)
	}
	var wantJoin *Relation
	withInterpreter(t, func() {
		wantJoin, err = Join(src, dim, jp, JoinAuto)
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != wantJoin.Len() {
		t.Fatalf("join under quota: %d rows, want %d", j.Len(), wantJoin.Len())
	}

	st := ChunkCacheStats()
	if st.Peak > quota {
		t.Fatalf("resident peak %d exceeded quota %d", st.Peak, quota)
	}
	if st.Evictions == 0 || st.Loads == 0 {
		t.Fatalf("expected eviction churn, got %+v", st)
	}
}

// TestQuotaWarningsOncePerCrossing: sustained pressure warns once; the
// counter moves again only after the cache drops back under quota and
// crosses a second time.
func TestQuotaWarningsOncePerCrossing(t *testing.T) {
	src := kernelRelation(t, 4*DefaultChunkRows)
	b := NewMemBackend()
	if err := b.WriteSegment("tbl", src); err != nil {
		t.Fatal(err)
	}
	cs, err := b.OpenSegment("tbl", src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	ck, err := cs.ReadChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	withQuota(t, 2*ck.Bytes()+ck.Bytes()/2) // room for ~2 chunks

	big, err := FromChunkSource("K", src.Schema(), cs)
	if err != nil {
		t.Fatal(err)
	}
	sweep := func() {
		rd := big.reader()
		for i := 0; i < big.Len(); i += DefaultChunkRows / 2 {
			rd.at(i)
		}
		if rd.Err() != nil {
			t.Fatal(rd.Err())
		}
	}
	sweep() // crossing #1: every fault past the second is under pressure
	if st := ChunkCacheStats(); st.QuotaWarnings != 1 {
		t.Fatalf("first sweep: %d warnings, want 1", st.QuotaWarnings)
	}
	sweep() // still under sustained pressure: no new crossing
	if st := ChunkCacheStats(); st.QuotaWarnings != 1 {
		t.Fatalf("sustained pressure: %d warnings, want 1", st.QuotaWarnings)
	}
	DropResidentChunks() // back under quota
	sweep()              // crossing #2
	if st := ChunkCacheStats(); st.QuotaWarnings != 2 {
		t.Fatalf("after relief: %d warnings, want 2", st.QuotaWarnings)
	}
}

// TestBackendConcurrentFaults hammers one segment from many goroutines
// under a tight quota; run with -race this doubles as the concurrency
// proof for segmentSource and the chunk cache.
func TestBackendConcurrentFaults(t *testing.T) {
	src := kernelRelation(t, 2*DefaultChunkRows)
	b := NewMemBackend()
	if err := b.WriteSegment("tbl", src); err != nil {
		t.Fatal(err)
	}
	cs, err := b.OpenSegment("tbl", src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	ck, err := cs.ReadChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	withQuota(t, 2*ck.Bytes()+ck.Bytes()/2)
	big, err := FromChunkSource("K", src.Schema(), cs)
	if err != nil {
		t.Fatal(err)
	}
	want := src.Tuple(src.Len() - 1)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rd := big.reader()
			for i := g; i < big.Len(); i += 97 {
				tup := rd.at(i)
				if rd.Err() != nil {
					errs <- rd.Err()
					return
				}
				if len(tup) != big.Schema().Len() {
					errs <- fmt.Errorf("row %d: %d cols", i, len(tup))
					return
				}
			}
			got := rd.take(big.Len() - 1)
			if rd.Err() != nil {
				errs <- rd.Err()
				return
			}
			for c := range want {
				if keyOf(got[c]) != keyOf(want[c]) {
					errs <- fmt.Errorf("goroutine %d: last row drift col %d", g, c)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
