package rel

import (
	"context"
	"sort"

	"repro/internal/expr"
	"repro/internal/types"
)

// Tuple-level deltas: the currency of incremental view maintenance. A
// table write is described as a small list of DeltaOps; each maintained
// operator (the fused restrict/project pipeline, the hash equi-join)
// transforms an input delta into an output delta plus an updated output
// relation, touching O(delta) rows instead of rescanning. Every function
// here is conservative: whenever the incremental result could differ from
// a full recompute — schema drift, row-order perturbation, anything the
// operator cannot maintain in place — it reports !ok and the caller falls
// back to full refiring. The differential tests assert byte-identical
// outputs against the full operators on randomized write sequences.

// DeltaKind classifies one tuple-level change.
type DeltaKind int

// Delta kinds. Appends land at the end of the relation; updates replace
// one row in place. Deletes are not represented — the db layer has no
// tuple delete, and any unrepresentable change simply skips the delta
// path.
const (
	DeltaAppend DeltaKind = iota
	DeltaUpdate
)

// String names the kind for diagnostics.
func (k DeltaKind) String() string {
	switch k {
	case DeltaAppend:
		return "append"
	case DeltaUpdate:
		return "update"
	}
	return "unknown"
}

// DeltaOp is one tuple-level change against a relation version. Row is
// the row ordinal in the relation the op produces (for an append, the new
// last row). Tuple is the row's content after the op; Old is the content
// before it (updates only). Both record the tuples as of the write, so a
// batch of ops replays sequentially without consulting intermediate
// relation versions.
type DeltaOp struct {
	Kind  DeltaKind
	Row   int
	Tuple []types.Value
	Old   []types.Value
}

// TupleDelta is an ordered batch of changes taking one relation version
// to another.
type TupleDelta struct {
	Ops []DeltaOp
}

func deltaOps(d *TupleDelta) []DeltaOp {
	if d == nil {
		return nil
	}
	return d.Ops
}

func countAppends(d *TupleDelta) int {
	n := 0
	for _, op := range deltaOps(d) {
		if op.Kind == DeltaAppend {
			n++
		}
	}
	return n
}

// FusedDelta incrementally maintains the output of a fused restrict/
// project pipeline. newIn is the input relation AFTER the delta d has
// been applied to it; oldOut is the memoized pipeline output over the
// previous version. On success it returns the new output (sharing
// untouched tuples with oldOut), the pipeline's own output delta, and
// ok=true; any situation the incremental path cannot handle — predicate
// errors, membership changes that would insert or delete interior rows,
// provenance shapes it cannot reason about — returns ok=false and the
// caller refires the full scan.
//
// oldOut is never mutated: appends extend past its length (invisible to
// holders of the old slice header, the same discipline as the CoW table
// append path) and in-place row replacements copy the outer slice first.
func FusedDelta(ctx context.Context, newIn, oldOut *Relation, ops []FusedOp, d *TupleDelta) (*FusedResult, *TupleDelta, bool, error) {
	if len(ops) == 0 || newIn == nil || oldOut == nil {
		return nil, nil, false, nil
	}
	// The output's provenance rows must index newIn directly: newIn with
	// its own provenance would compose, and an output whose provenance was
	// lost (or points elsewhere) cannot be patched positionally.
	if newIn.provBase != nil || oldOut.provBase == nil {
		return nil, nil, false, nil
	}
	sh, err := fusedShapePass(ctx, newIn, ops)
	if err != nil {
		// The full chain would fail the same way; let the refire surface
		// it with standard step attribution.
		return nil, nil, false, nil
	}
	// Params changed shape under the memo → the memo is for a different
	// pipeline; refire.
	if !sh.shape.schema.Equal(oldOut.schema) {
		return nil, nil, false, nil
	}
	inLen := newIn.Len() - countAppends(d)
	keep := oldOut.provRows
	outTuples := oldOut.tuples
	if inLen < 0 || len(keep) != len(outTuples) {
		return nil, nil, false, nil
	}
	if len(keep) > 0 && keep[len(keep)-1] >= inLen {
		// The memo's provenance points past the pre-delta input length, so
		// it cannot be a view over the previous version of newIn.
		return nil, nil, false, nil
	}
	copied := false
	ensureCopy := func() {
		if copied {
			return
		}
		keep = append([]int(nil), keep...)
		outTuples = append([][]types.Value(nil), outTuples...)
		copied = true
	}
	var outOps []DeltaOp
	var scratch []types.Value
	sorted := false
	for _, op := range deltaOps(d) {
		switch op.Kind {
		case DeltaAppend:
			if op.Row != inLen || len(op.Tuple) != newIn.schema.Len() {
				return nil, nil, false, nil
			}
			row := inLen
			inLen++
			var pass bool
			pass, scratch, err = sh.evalRow(newIn, row, op.Tuple, scratch)
			if err != nil {
				return nil, nil, false, nil
			}
			if !pass {
				continue
			}
			nt := sh.projectRow(op.Tuple)
			outTuples = append(outTuples, nt)
			keep = append(keep, row)
			outOps = append(outOps, DeltaOp{Kind: DeltaAppend, Row: len(outTuples) - 1, Tuple: nt})
		case DeltaUpdate:
			if op.Row < 0 || op.Row >= inLen || len(op.Tuple) != newIn.schema.Len() {
				return nil, nil, false, nil
			}
			if !sorted {
				// Membership lookups binary-search the keep list; every
				// producer of a restrict/project output emits rows in
				// ascending order, but verify once rather than assume.
				if !sort.IntsAreSorted(keep) {
					return nil, nil, false, nil
				}
				sorted = true
			}
			var pass bool
			pass, scratch, err = sh.evalRow(newIn, op.Row, op.Tuple, scratch)
			if err != nil {
				return nil, nil, false, nil
			}
			j := sort.SearchInts(keep, op.Row)
			member := j < len(keep) && keep[j] == op.Row
			switch {
			case member && pass:
				nt := sh.projectRow(op.Tuple)
				ensureCopy()
				old := outTuples[j]
				outTuples[j] = nt
				outOps = append(outOps, DeltaOp{Kind: DeltaUpdate, Row: j, Tuple: nt, Old: old})
			case !member && !pass:
				// Was filtered out, still is: nothing to do.
			default:
				// The update flips predicate membership — an interior
				// insert or delete the positional patch cannot express.
				return nil, nil, false, nil
			}
		default:
			return nil, nil, false, nil
		}
	}
	out := sh.shape
	out.tuples = outTuples
	out.setProv(newIn, keep)
	return &FusedResult{Out: out, Shapes: sh.shapes}, &TupleDelta{Ops: outOps}, true, nil
}

// JoinState is the maintained state of a hash equi-join: the build-side
// hash table (bucket lists in build-row order, exactly as hashJoin
// constructs them), a probe-side index for the reverse lookup build
// appends need, and the (probeRow, buildRow) pair behind every output
// tuple in emission order. Built once with an O(n) replay, it then
// absorbs tuple deltas in O(affected pairs) per frame.
//
// A JoinState that returns ok=false from Apply is poisoned — its indexes
// may be partially advanced — and must be discarded along with the memo
// it maintained.
type JoinState struct {
	pred  expr.Node
	shell *Relation // output shape: schema + surviving computed attrs
	cp    *compiledPred
	env   *scratchEnv

	scratch    []types.Value
	matScratch []types.Value

	li, ri       int // key ordinals in l and r
	bi, pi       int // key ordinals in build and probe
	buildIsRight bool

	table      map[valueKey][]int // key -> build rows, in build-row order
	probeIdx   map[valueKey][]int // key -> probe rows, in probe-row order
	pairs      [][2]int           // (probeRow, buildRow) per output tuple, probe-major
	outTuples  [][]types.Value
	lLen, rLen int
}

// residual evaluates the join predicate over one candidate (lt, rt) pair,
// with identical semantics to Join's emit closure (compiled when
// possible, computed attributes materialized).
func (s *JoinState) residual(lt, rt []types.Value) (bool, error) {
	s.scratch = s.scratch[:0]
	s.scratch = append(s.scratch, lt...)
	s.scratch = append(s.scratch, rt...)
	if s.cp != nil {
		var keep bool
		var err error
		keep, s.matScratch, err = s.cp.eval(s.scratch, s.matScratch)
		return keep, err
	}
	s.env.tuple = s.scratch
	return expr.EvalPredicate(s.pred, s.env)
}

// outTuple materializes one output row from a kept pair.
func (s *JoinState) outTuple(lt, rt []types.Value) []types.Value {
	nt := make([]types.Value, 0, len(lt)+len(rt))
	nt = append(nt, lt...)
	return append(nt, rt...)
}

// sides orders a (probe, build) tuple pair into (left, right).
func (s *JoinState) sides(ptup, btup []types.Value) (lt, rt []types.Value) {
	if s.buildIsRight {
		return ptup, btup
	}
	return btup, ptup
}

// BuildJoinState reconstructs maintainable join state from the inputs and
// memoized output of a previous full hash join. It replays the probe loop
// to recover which (probe, build) pair produced each output row and
// requires exact agreement with the memo; any join a hash strategy would
// not have handled — no equi-conjunct, predicate errors — reports !ok.
func BuildJoinState(oldL, oldR, oldOut *Relation, pred expr.Node) (*JoinState, bool) {
	if oldL == nil || oldR == nil || oldOut == nil || pred == nil {
		return nil, false
	}
	shell, rRename, err := joinShape(oldL, oldR)
	if err != nil {
		return nil, false
	}
	if err := expr.CheckPredicate(pred, shell); err != nil {
		return nil, false
	}
	if !shell.schema.Equal(oldOut.schema) {
		return nil, false
	}
	la, ra, ok := equiKey(pred, oldL, oldR, rRename)
	if !ok {
		return nil, false
	}
	li, ri := oldL.schema.Index(la), oldR.schema.Index(ra)
	if li < 0 || ri < 0 {
		return nil, false
	}
	s := &JoinState{
		pred:  pred,
		shell: shell,
		cp:    shell.compilePredicate(pred),
		env:   &scratchEnv{rel: shell},
		li:    li,
		ri:    ri,
		lLen:  oldL.Len(),
		rLen:  oldR.Len(),
	}
	s.scratch = make([]types.Value, 0, oldL.schema.Len()+oldR.schema.Len())
	// Build-side selection mirrors hashJoin exactly: build on the right
	// unless the left is strictly smaller.
	build, probe := oldR, oldL
	s.bi, s.pi = ri, li
	s.buildIsRight = true
	if oldL.Len() < oldR.Len() {
		build, probe = oldL, oldR
		s.bi, s.pi = li, ri
		s.buildIsRight = false
	}
	s.table = make(map[valueKey][]int, build.Len())
	brd := build.reader()
	for row, n := 0, build.Len(); row < n; row++ {
		v := brd.value(row, s.bi)
		if v.IsNull() {
			continue
		}
		k := keyOf(v)
		s.table[k] = append(s.table[k], row)
	}
	s.probeIdx = make(map[valueKey][]int)
	prd := probe.reader()
	for row, n := 0, probe.Len(); row < n; row++ {
		v := prd.value(row, s.pi)
		if v.IsNull() {
			continue
		}
		k := keyOf(v)
		s.probeIdx[k] = append(s.probeIdx[k], row)
	}
	// Replay the probe loop to recover pair provenance. The memoized
	// output must have exactly one row per kept pair, in the same order.
	bget := build.reader()
	for prow, n := 0, probe.Len(); prow < n; prow++ {
		ptup := prd.take(prow)
		v := ptup[s.pi]
		if v.IsNull() {
			continue
		}
		for _, brow := range s.table[keyOf(v)] {
			lt, rt := s.sides(ptup, bget.take(brow))
			keep, err := s.residual(lt, rt)
			if err != nil {
				return nil, false
			}
			if keep {
				s.pairs = append(s.pairs, [2]int{prow, brow})
			}
		}
	}
	if brd.Err() != nil || prd.Err() != nil || bget.Err() != nil {
		return nil, false
	}
	if len(s.pairs) != oldOut.Len() {
		return nil, false
	}
	s.outTuples = oldOut.tuples
	return s, true
}

// Apply advances the join state by one batch of input deltas (either may
// be nil), returning the new output relation and its delta. The patched
// output must be byte-identical to a full re-join of the new inputs;
// whenever that cannot be guaranteed by appends and in-place row
// replacements alone — build-side updates, key changes, pairs that would
// interleave with existing output rows, a build-side flip — Apply
// reports ok=false, after which the state is poisoned and must be
// discarded.
func (s *JoinState) Apply(newL, newR *Relation, dl, dr *TupleDelta) (*Relation, *TupleDelta, bool) {
	if newL == nil || newR == nil {
		return nil, nil, false
	}
	if newL.Len() != s.lLen+countAppends(dl) || newR.Len() != s.rLen+countAppends(dr) {
		return nil, nil, false
	}
	// A full recompute at the new sizes must choose the same build side,
	// or output row order changes wholesale.
	if (newL.Len() < newR.Len()) == s.buildIsRight {
		return nil, nil, false
	}
	dbuild, dprobe := dr, dl
	buildRel, probeRel := newR, newL
	buildLen, probeLen := s.rLen, s.lLen
	if !s.buildIsRight {
		dbuild, dprobe = dl, dr
		buildRel, probeRel = newL, newR
		buildLen, probeLen = s.lLen, s.rLen
	}
	outTuples := s.outTuples
	pairs := s.pairs
	copied := false
	ensureCopy := func() {
		if copied {
			return
		}
		outTuples = append([][]types.Value(nil), outTuples...)
		copied = true
	}
	var outOps []DeltaOp
	prd := probeRel.reader()
	brd := buildRel.reader()

	// Phase 1 — build-side changes. New build rows may only extend their
	// bucket tails; if any existing probe row would pair with a new build
	// row (checked against the probe side's final content), the new
	// output rows would interleave with existing ones, so fall back.
	// Build-side updates would rewrite bucket content under existing
	// pairs; punt those entirely.
	for _, op := range deltaOps(dbuild) {
		if op.Kind != DeltaAppend {
			return nil, nil, false
		}
		if op.Row != buildLen || len(op.Tuple) != buildRel.schema.Len() {
			return nil, nil, false
		}
		brow := buildLen
		buildLen++
		v := op.Tuple[s.bi]
		if v.IsNull() {
			continue
		}
		k := keyOf(v)
		for _, prow := range s.probeIdx[k] {
			lt, rt := s.sides(prd.at(prow), op.Tuple)
			if prd.Err() != nil {
				return nil, nil, false
			}
			keep, err := s.residual(lt, rt)
			if err != nil || keep {
				return nil, nil, false
			}
		}
		s.table[k] = append(s.table[k], brow)
	}

	// Phase 2 — probe-side changes, in commit order. Appends probe the
	// (already final) build table and emit at the end, preserving
	// probe-major order; updates may only rewrite their own pairs in
	// place, which requires the updated row's kept-pair set to be exactly
	// what it was.
	for _, op := range deltaOps(dprobe) {
		switch op.Kind {
		case DeltaAppend:
			if op.Row != probeLen || len(op.Tuple) != probeRel.schema.Len() {
				return nil, nil, false
			}
			prow := probeLen
			probeLen++
			v := op.Tuple[s.pi]
			if v.IsNull() {
				continue
			}
			k := keyOf(v)
			for _, brow := range s.table[k] {
				lt, rt := s.sides(op.Tuple, brd.at(brow))
				if brd.Err() != nil {
					return nil, nil, false
				}
				keep, err := s.residual(lt, rt)
				if err != nil {
					return nil, nil, false
				}
				if keep {
					nt := s.outTuple(lt, rt)
					outTuples = append(outTuples, nt)
					pairs = append(pairs, [2]int{prow, brow})
					outOps = append(outOps, DeltaOp{Kind: DeltaAppend, Row: len(outTuples) - 1, Tuple: nt})
				}
			}
			s.probeIdx[k] = append(s.probeIdx[k], prow)
		case DeltaUpdate:
			if op.Row < 0 || op.Row >= probeLen ||
				len(op.Tuple) != probeRel.schema.Len() || len(op.Old) != probeRel.schema.Len() {
				return nil, nil, false
			}
			// A key change moves the row between buckets: its pairs would
			// be deleted and new interior pairs inserted.
			if keyOf(op.Old[s.pi]) != keyOf(op.Tuple[s.pi]) {
				return nil, nil, false
			}
			k := keyOf(op.Tuple[s.pi])
			if op.Tuple[s.pi].IsNull() {
				// Null keys never join; null → null is a no-op.
				continue
			}
			lo := sort.Search(len(pairs), func(i int) bool { return pairs[i][0] >= op.Row })
			hi := sort.Search(len(pairs), func(i int) bool { return pairs[i][0] > op.Row })
			// Recompute the row's kept set over its bucket, in bucket
			// order — the order its pairs were emitted in. Any deviation
			// from the existing pair list is an interior insert/delete.
			j := lo
			var newTuples [][]types.Value
			for _, brow := range s.table[k] {
				lt, rt := s.sides(op.Tuple, brd.at(brow))
				if brd.Err() != nil {
					return nil, nil, false
				}
				keep, err := s.residual(lt, rt)
				if err != nil {
					return nil, nil, false
				}
				if keep {
					if j >= hi || pairs[j][1] != brow {
						return nil, nil, false
					}
					newTuples = append(newTuples, s.outTuple(lt, rt))
					j++
				}
			}
			if j != hi {
				return nil, nil, false
			}
			if len(newTuples) > 0 {
				ensureCopy()
				for idx, nt := range newTuples {
					pos := lo + idx
					old := outTuples[pos]
					outTuples[pos] = nt
					outOps = append(outOps, DeltaOp{Kind: DeltaUpdate, Row: pos, Tuple: nt, Old: old})
				}
			}
		default:
			return nil, nil, false
		}
	}

	newOut := &Relation{schema: s.shell.schema, computed: s.shell.computed, tuples: outTuples}
	s.outTuples = outTuples
	s.pairs = pairs
	s.lLen, s.rLen = newL.Len(), newR.Len()
	return newOut, &TupleDelta{Ops: outOps}, true
}
