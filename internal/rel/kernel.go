package rel

import (
	"fmt"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/types"
)

// This file is the columnar predicate kernel: a second expression
// compiler that lowers a restriction predicate to monomorphic loops over
// a chunk's contiguous typed lanes (internal/rel/chunk.go), producing
// selection bitmaps instead of per-row values. It exists for the hot
// scan paths only — Restrict and the fused Restrict/Project pipeline —
// and is strictly best-effort: any node it cannot reproduce EXACTLY
// rejects compilation and the caller keeps the row-at-a-time path
// (compiled closures or the interpreter), which remains the semantics
// of record and the differential oracle.
//
// Exactness argument. Append and Update enforce schema kinds, so at run
// time every stored value has its declared kind or is null; the static
// kinds the kernel computes are therefore the only kinds its lanes ever
// hold. Within the node set the kernel accepts, the sole reachable
// runtime error is integer or float division/modulo by zero. Those rows
// are flagged in a per-chunk error bitmap and re-evaluated row-wise in
// ascending order through the ordinary path, which both reproduces the
// exact error value and preserves the "lowest failing row reports
// first" determinism of a serial scan. Everything else is pure bitmap
// algebra chosen to mirror the interpreter bit for bit:
//
//   - null propagation: null_out = null_l | null_r for every non-and/or
//     operator, nulls collapsed to false at the predicate boundary;
//   - and/or: the interpreter's short-circuit Kleene forms, expressed
//     as  and: t' = tl&tr, n' = nl | (tl&nr);  or: t' = tl | (fl&tr),
//     n' = nl | (fl&nr)  with f = ^(t|n|e) — including the asymmetric
//     error rule that a short-circuited right side cannot raise;
//   - arithmetic: Int×Int stays int64 with Go's wrapping overflow and
//     truncating division, exactly evalArith's operations; any Int/Float
//     mix promotes through float64 just as AsFloat does;
//   - comparisons: types.Compare orders numeric kinds by three-way
//     float64 comparison (under which NaN is "equal" to everything), so
//     the kernel compares float64 lanes with the matching predicates:
//     <: a<b, <=: !(a>b), =: !(a<b)&&!(a>b), and so on — never native
//     int comparisons, which would diverge past 2^53.
//
// Rejected outright (row path handles them): Date arithmetic, Bool
// comparisons, Text ordering and concatenation (Text = / != is kept),
// float modulo, builtin calls, and null literals. Computed attributes
// inline their definitions recursively with a per-chunk memo, and an
// error inside a definition forces that row's attribute to null — the
// same swallowing Row.AttrValue and the closure compiler perform.

// columnarOff is the kernel's ablation knob, independent of compileOff:
// the benchmark baseline runs with compilation on and the columnar
// kernel off to measure exactly the chunk-kernel contribution.
var columnarOff atomic.Bool

// SetColumnarDisabled turns the columnar chunk kernels off (true) or on
// (false) process-wide and returns the previous setting. With kernels
// off every scan takes the row-at-a-time path — the ablation baseline
// for the columnar_scan benchmark.
func SetColumnarDisabled(off bool) bool { return columnarOff.Swap(off) }

// ColumnarDisabled reports whether the columnar kernels are disabled.
func ColumnarDisabled() bool { return columnarOff.Load() }

// kernelMinRows is the row count below which a row-major relation is
// not worth encoding into a columnar view for one scan.
const kernelMinRows = DefaultChunkRows

// ---------------------------------------------------------------------
// Bitmaps.

// kbits is a row bitmap. Word counts follow the producing context's row
// count; binary combinators run over the shorter operand (a constant
// vector is sized for a full chunk, the last chunk of a relation is
// shorter). Bits at or above the consumer's row count are meaningless
// and every consuming loop is bounded, so trailing garbage is harmless.
// A nil kbits means "no bits set" and may be returned shared by the
// combinators; treat every kbits as immutable once produced.
type kbits []uint64

func newKbits(n int) kbits { return make(kbits, (n+63)/64) }

func onesKbits(n int) kbits {
	b := newKbits(n)
	for i := range b {
		b[i] = ^uint64(0)
	}
	return b
}

func (b kbits) set(i int)       { b[i>>6] |= 1 << (uint(i) & 63) }
func (b kbits) test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// kAny reports whether any bit is set (trailing garbage included — use
// only as a fast-path gate, never for correctness).
func kAny(b kbits) bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

func minWords(a, b kbits) int {
	if len(a) < len(b) {
		return len(a)
	}
	return len(b)
}

// kOr returns a|b; nil operands pass the other through unchanged.
func kOr(a, b kbits) kbits {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(kbits, minWords(a, b))
	for i := range out {
		out[i] = a[i] | b[i]
	}
	return out
}

// kAnd returns a&b; nil if either operand is nil.
func kAnd(a, b kbits) kbits {
	if a == nil || b == nil {
		return nil
	}
	out := make(kbits, minWords(a, b))
	for i := range out {
		out[i] = a[i] & b[i]
	}
	return out
}

// kAndNot returns a&^b.
func kAndNot(a, b kbits) kbits {
	if a == nil || b == nil {
		return a
	}
	out := make(kbits, minWords(a, b))
	for i := range out {
		out[i] = a[i] &^ b[i]
	}
	return out
}

// kNot3 returns ^(a|b|c) over a's word count (a must be non-nil; b and
// c may be nil).
func kNot3(a, b, c kbits) kbits {
	out := make(kbits, len(a))
	for i := range out {
		w := a[i]
		if b != nil && i < len(b) {
			w |= b[i]
		}
		if c != nil && i < len(c) {
			w |= c[i]
		}
		out[i] = ^w
	}
	return out
}

// ---------------------------------------------------------------------
// Vectors.

// kvec is one expression node's value over a chunk: a typed lane plus
// null and error bitmaps. Int, Date share the int64 lane; Bool is held
// as bitmaps (t = true rows) rather than a lane. The three bitmaps are
// pairwise disjoint: an error row is neither null nor true, a null row
// is not true. Lane slots under a null or error bit are garbage.
type kvec struct {
	kind   types.Kind
	ints   []int64
	floats []float64
	strs   []string
	t      kbits // Bool only; always non-nil for Bool vectors
	null   kbits // nil = no nulls
	errs   kbits // nil = no errors (division/modulo by zero)
}

// kctx is the per-chunk evaluation context. memo caches computed-
// attribute vectors by definition node for the current chunk.
type kctx struct {
	c    *Chunk
	n    int
	memo map[expr.Node]*kvec
}

func (kc *kctx) reset(c *Chunk) {
	kc.c, kc.n, kc.memo = c, c.Rows(), nil
}

// kfn evaluates one compiled node over the context's chunk.
type kfn func(kc *kctx) *kvec

// kernProg is a kernel-compiled predicate.
type kernProg struct {
	root kfn
}

// kernScope resolves attribute names for the kernel compiler: stored
// columns map (through colMap when the caller's name space is a fused
// shape) to chunk column ordinals and their schema kinds; computed
// attributes yield their definitions for inlining.
type kernScope struct {
	schema   *Schema
	colMap   []int // nil = identity
	computed []Computed
}

func (s kernScope) resolve(name string) (ord int, kind types.Kind, def expr.Node, ok bool) {
	if i := s.schema.Index(name); i >= 0 {
		ord = i
		if s.colMap != nil {
			ord = s.colMap[i]
		}
		return ord, s.schema.Col(i).Kind, nil, true
	}
	for _, c := range s.computed {
		if c.Name == name {
			return -1, c.Kind, c.Expr, true
		}
	}
	return -1, types.Invalid, nil, false
}

// kernelCompilePred compiles pred to a chunk kernel, or reports false
// when any node falls outside the exactly-reproducible set.
func kernelCompilePred(pred expr.Node, scope kernScope, maxRows int) (*kernProg, bool) {
	c := &kernCompiler{scope: scope, maxRows: maxRows}
	fn, kind, _, ok := c.compile(pred)
	if !ok || kind != types.Bool {
		return nil, false
	}
	return &kernProg{root: fn}, true
}

// ---------------------------------------------------------------------
// Compiler.

type kernCompiler struct {
	scope   kernScope
	maxRows int
	depth   int
}

// compile lowers one node, folding constant subtrees to a broadcast
// vector built once at compile time (errors included — a constant 1/0
// becomes an all-error vector whose rows all fall back, reproducing the
// interpreter's first-row error).
func (c *kernCompiler) compile(n expr.Node) (kfn, types.Kind, bool, bool) {
	fn, kind, konst, ok := c.compileNode(n)
	if !ok {
		return nil, types.Invalid, false, false
	}
	if konst {
		v := fn(&kctx{n: 1})
		bc := c.broadcast(v, kind)
		return func(*kctx) *kvec { return bc }, kind, true, true
	}
	return fn, kind, false, true
}

// broadcast expands a single-row vector to maxRows rows.
func (c *kernCompiler) broadcast(v *kvec, kind types.Kind) *kvec {
	out := &kvec{kind: kind}
	if (v.errs != nil && v.errs.test(0)) || (v.null != nil && v.null.test(0)) {
		if v.errs != nil && v.errs.test(0) {
			out.errs = onesKbits(c.maxRows)
		} else {
			out.null = onesKbits(c.maxRows)
		}
		// Zero-filled lanes keep the kvec invariant (error/null slots
		// hold zero values) so arithmetic consumers can slice blindly.
		switch kind {
		case types.Int, types.Date:
			out.ints = make([]int64, c.maxRows)
		case types.Float:
			out.floats = make([]float64, c.maxRows)
		case types.Text:
			out.strs = make([]string, c.maxRows)
		case types.Bool:
			out.t = newKbits(c.maxRows)
		}
		return out
	}
	switch kind {
	case types.Int, types.Date:
		out.ints = make([]int64, c.maxRows)
		for i := range out.ints {
			out.ints[i] = v.ints[0]
		}
	case types.Float:
		out.floats = make([]float64, c.maxRows)
		for i := range out.floats {
			out.floats[i] = v.floats[0]
		}
	case types.Text:
		out.strs = make([]string, c.maxRows)
		for i := range out.strs {
			out.strs[i] = v.strs[0]
		}
	case types.Bool:
		if v.t.test(0) {
			out.t = onesKbits(c.maxRows)
		} else {
			out.t = newKbits(c.maxRows)
		}
	}
	return out
}

func isIF(k types.Kind) bool { return k == types.Int || k == types.Float }

func isNumericK(k types.Kind) bool {
	return k == types.Int || k == types.Float || k == types.Date
}

func (c *kernCompiler) compileNode(n expr.Node) (kfn, types.Kind, bool, bool) {
	switch n := n.(type) {
	case *expr.Lit:
		v := n.Val
		if v.IsNull() {
			return nil, types.Invalid, false, false
		}
		kind := v.Kind()
		single := &kvec{kind: kind}
		switch kind {
		case types.Int:
			single.ints = []int64{v.Int()}
		case types.Date:
			single.ints = []int64{v.DateDays()}
		case types.Float:
			single.floats = []float64{v.Float()}
		case types.Text:
			single.strs = []string{v.Text()}
		case types.Bool:
			single.t = newKbits(1)
			if v.Bool() {
				single.t.set(0)
			}
		default:
			return nil, types.Invalid, false, false
		}
		return func(*kctx) *kvec { return single }, kind, true, true

	case *expr.Ref:
		ord, kind, def, ok := c.scope.resolve(n.Name)
		if !ok {
			return nil, types.Invalid, false, false
		}
		if def != nil {
			return c.compileComputed(def)
		}
		switch kind {
		case types.Int, types.Float, types.Date, types.Text, types.Bool:
		default:
			return nil, types.Invalid, false, false
		}
		return func(kc *kctx) *kvec {
			cv := &kc.c.cols[ord]
			words := (kc.n + 63) / 64
			null := make(kbits, words)
			for w := 0; w < words; w++ {
				null[w] = ^cv.valid[w]
			}
			out := &kvec{kind: kind, null: null}
			switch kind {
			case types.Int, types.Date:
				out.ints = cv.ints
			case types.Float:
				out.floats = cv.floats
			case types.Text:
				out.strs = cv.strs
			case types.Bool:
				t := make(kbits, words)
				lane := cv.ints
				for i := 0; i < kc.n; i++ {
					if lane[i] != 0 {
						t.set(i)
					}
				}
				out.t = kAndNot(t, null)
			}
			return out
		}, kind, false, true

	case *expr.Unary:
		xf, kind, konst, ok := c.compile(n.X)
		if !ok {
			return nil, types.Invalid, false, false
		}
		switch n.Op {
		case "-":
			switch kind {
			case types.Int:
				return func(kc *kctx) *kvec {
					x := xf(kc)
					res := make([]int64, kc.n)
					lane := x.ints[:kc.n]
					for i := range res {
						res[i] = -lane[i]
					}
					return &kvec{kind: types.Int, ints: res, null: x.null, errs: x.errs}
				}, types.Int, konst, true
			case types.Float:
				return func(kc *kctx) *kvec {
					x := xf(kc)
					res := make([]float64, kc.n)
					lane := x.floats[:kc.n]
					for i := range res {
						res[i] = -lane[i]
					}
					return &kvec{kind: types.Float, floats: res, null: x.null, errs: x.errs}
				}, types.Float, konst, true
			}
			return nil, types.Invalid, false, false
		case "not":
			if kind != types.Bool {
				return nil, types.Invalid, false, false
			}
			return func(kc *kctx) *kvec {
				x := xf(kc)
				return &kvec{kind: types.Bool, t: kNot3(x.t, x.null, x.errs), null: x.null, errs: x.errs}
			}, types.Bool, konst, true
		}
		return nil, types.Invalid, false, false

	case *expr.Binary:
		lf, lk, lko, ok := c.compile(n.L)
		if !ok {
			return nil, types.Invalid, false, false
		}
		rf, rk, rko, ok := c.compile(n.R)
		if !ok {
			return nil, types.Invalid, false, false
		}
		konst := lko && rko
		switch n.Op {
		case "and", "or":
			if lk != types.Bool || rk != types.Bool {
				return nil, types.Invalid, false, false
			}
			isAnd := n.Op == "and"
			return func(kc *kctx) *kvec {
				l, r := lf(kc), rf(kc)
				out := &kvec{kind: types.Bool}
				if isAnd {
					// false-l short-circuits: r's errors and nulls only
					// matter where l is true or null.
					out.errs = kOr(l.errs, kAnd(kOr(l.t, l.null), r.errs))
					out.null = kAndNot(kOr(l.null, kAnd(l.t, r.null)), out.errs)
					out.t = kAnd(l.t, r.t)
				} else {
					// true-l short-circuits: r matters where l is false
					// or null (null-l still propagates r's errors).
					fl := kNot3(l.t, l.null, l.errs)
					out.errs = kOr(l.errs, kAndNot(r.errs, l.t))
					out.null = kAndNot(kOr(l.null, kAnd(fl, r.null)), out.errs)
					out.t = kOr(l.t, kAnd(fl, r.t))
				}
				return out
			}, types.Bool, konst, true

		case "+", "-", "*", "/", "%":
			if !isIF(lk) || !isIF(rk) {
				return nil, types.Invalid, false, false
			}
			if lk == types.Int && rk == types.Int {
				return c.intArith(n.Op, lf, rf), types.Int, konst, true
			}
			if n.Op == "%" {
				// Float modulo goes through math.Mod in the interpreter;
				// keep it on the row path.
				return nil, types.Invalid, false, false
			}
			lf = c.coerceFloat(lf, lk, lko)
			rf = c.coerceFloat(rf, rk, rko)
			return c.floatArith(n.Op, lf, rf), types.Float, konst, true

		case "<", "<=", ">", ">=", "=", "!=":
			if lk == types.Text && rk == types.Text {
				if n.Op != "=" && n.Op != "!=" {
					return nil, types.Invalid, false, false
				}
				return c.textEq(n.Op == "!=", lf, rf), types.Bool, konst, true
			}
			if !isNumericK(lk) || !isNumericK(rk) {
				return nil, types.Invalid, false, false
			}
			if (n.Op == "=" || n.Op == "!=") && lk != rk && !(isIF(lk) && isIF(rk)) {
				// comparable() rejects e.g. Date = Int at run time.
				return nil, types.Invalid, false, false
			}
			lf = c.coerceFloat(lf, lk, lko)
			rf = c.coerceFloat(rf, rk, rko)
			return c.floatCompare(n.Op, lf, rf), types.Bool, konst, true
		}
		return nil, types.Invalid, false, false
	}
	// Calls (builtins) and anything unknown: row path.
	return nil, types.Invalid, false, false
}

// compileComputed inlines a computed-attribute definition: evaluated
// once per chunk (memoized by definition node), with any per-row error
// inside the definition converted to null at this boundary — exactly
// Row.AttrValue's swallowing.
func (c *kernCompiler) compileComputed(def expr.Node) (kfn, types.Kind, bool, bool) {
	c.depth++
	if c.depth > 64 {
		c.depth--
		return nil, types.Invalid, false, false
	}
	sub, kind, konst, ok := c.compile(def)
	c.depth--
	if !ok {
		return nil, types.Invalid, false, false
	}
	fn := func(kc *kctx) *kvec {
		if kc.memo != nil {
			if v, ok := kc.memo[def]; ok {
				return v
			}
		}
		v := sub(kc)
		if v.errs != nil {
			nv := *v
			nv.null = kOr(v.null, v.errs)
			nv.errs = nil
			v = &nv
		}
		if kc.memo == nil {
			kc.memo = make(map[expr.Node]*kvec)
		}
		kc.memo[def] = v
		return v
	}
	return fn, kind, konst, true
}

// coerceFloat adapts an Int or Date lane producer to a float64 lane,
// matching AsFloat's conversion. Constant operands convert once.
func (c *kernCompiler) coerceFloat(fn kfn, kind types.Kind, konst bool) kfn {
	if kind == types.Float {
		return fn
	}
	conv := func(kc *kctx) *kvec {
		x := fn(kc)
		res := make([]float64, kc.n)
		lane := x.ints[:kc.n]
		for i := range res {
			res[i] = float64(lane[i])
		}
		return &kvec{kind: types.Float, floats: res, null: x.null, errs: x.errs}
	}
	if konst {
		bc := conv(&kctx{n: c.maxRows})
		return func(*kctx) *kvec { return bc }
	}
	return conv
}

// intArith lowers Int×Int arithmetic: Go's wrapping int64 ops, with
// division/modulo by zero flagged as per-row errors for fallback.
func (c *kernCompiler) intArith(op string, lf, rf kfn) kfn {
	return func(kc *kctx) *kvec {
		l, r := lf(kc), rf(kc)
		n := kc.n
		errs := kOr(l.errs, r.errs)
		null := kAndNot(kOr(l.null, r.null), errs)
		res := make([]int64, n)
		a, b := l.ints[:n], r.ints[:n]
		var zero kbits
		switch op {
		case "+":
			for i := range res {
				res[i] = a[i] + b[i]
			}
		case "-":
			for i := range res {
				res[i] = a[i] - b[i]
			}
		case "*":
			for i := range res {
				res[i] = a[i] * b[i]
			}
		case "/":
			for i := 0; i < n; i++ {
				if b[i] == 0 {
					if zero == nil {
						zero = newKbits(n)
					}
					zero.set(i)
					continue
				}
				res[i] = a[i] / b[i]
			}
		case "%":
			for i := 0; i < n; i++ {
				if b[i] == 0 {
					if zero == nil {
						zero = newKbits(n)
					}
					zero.set(i)
					continue
				}
				res[i] = a[i] % b[i]
			}
		}
		if zero != nil {
			// A zero divisor only errors on rows that were live: a null
			// operand already made the row null (its lane slot is 0).
			ne := kAndNot(kAndNot(zero, null), errs)
			if kAny(ne) {
				errs = kOr(errs, ne)
			}
		}
		return &kvec{kind: types.Int, ints: res, null: null, errs: errs}
	}
}

// floatArith lowers float64 arithmetic (operands already coerced).
// Division by zero — Compare's ±0 included — errors like evalArith.
func (c *kernCompiler) floatArith(op string, lf, rf kfn) kfn {
	return func(kc *kctx) *kvec {
		l, r := lf(kc), rf(kc)
		n := kc.n
		errs := kOr(l.errs, r.errs)
		null := kAndNot(kOr(l.null, r.null), errs)
		res := make([]float64, n)
		a, b := l.floats[:n], r.floats[:n]
		var zero kbits
		switch op {
		case "+":
			for i := range res {
				res[i] = a[i] + b[i]
			}
		case "-":
			for i := range res {
				res[i] = a[i] - b[i]
			}
		case "*":
			for i := range res {
				res[i] = a[i] * b[i]
			}
		case "/":
			for i := 0; i < n; i++ {
				if b[i] == 0 {
					if zero == nil {
						zero = newKbits(n)
					}
					zero.set(i)
					continue
				}
				res[i] = a[i] / b[i]
			}
		}
		if zero != nil {
			ne := kAndNot(kAndNot(zero, null), errs)
			if kAny(ne) {
				errs = kOr(errs, ne)
			}
		}
		return &kvec{kind: types.Float, floats: res, null: null, errs: errs}
	}
}

// floatCompare lowers numeric comparisons as three-way float64
// comparison predicates, reproducing types.Compare exactly — including
// NaN ordering as "equal to everything" (both a<b and a>b false).
func (c *kernCompiler) floatCompare(op string, lf, rf kfn) kfn {
	return func(kc *kctx) *kvec {
		l, r := lf(kc), rf(kc)
		n := kc.n
		errs := kOr(l.errs, r.errs)
		null := kAndNot(kOr(l.null, r.null), errs)
		t := newKbits(n)
		a, b := l.floats[:n], r.floats[:n]
		switch op {
		case "<":
			for i := 0; i < n; i++ {
				if a[i] < b[i] {
					t.set(i)
				}
			}
		case "<=":
			for i := 0; i < n; i++ {
				if !(a[i] > b[i]) {
					t.set(i)
				}
			}
		case ">":
			for i := 0; i < n; i++ {
				if a[i] > b[i] {
					t.set(i)
				}
			}
		case ">=":
			for i := 0; i < n; i++ {
				if !(a[i] < b[i]) {
					t.set(i)
				}
			}
		case "=":
			for i := 0; i < n; i++ {
				if !(a[i] < b[i]) && !(a[i] > b[i]) {
					t.set(i)
				}
			}
		case "!=":
			for i := 0; i < n; i++ {
				if a[i] < b[i] || a[i] > b[i] {
					t.set(i)
				}
			}
		}
		t = kAndNot(kAndNot(t, null), errs)
		return &kvec{kind: types.Bool, t: t, null: null, errs: errs}
	}
}

// textEq lowers Text equality (the one Text comparison the kernel
// keeps; ordering goes through strings.Compare on the row path).
func (c *kernCompiler) textEq(neq bool, lf, rf kfn) kfn {
	return func(kc *kctx) *kvec {
		l, r := lf(kc), rf(kc)
		n := kc.n
		errs := kOr(l.errs, r.errs)
		null := kAndNot(kOr(l.null, r.null), errs)
		t := newKbits(n)
		a, b := l.strs[:n], r.strs[:n]
		if neq {
			for i := 0; i < n; i++ {
				if a[i] != b[i] {
					t.set(i)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if a[i] == b[i] {
					t.set(i)
				}
			}
		}
		t = kAndNot(kAndNot(t, null), errs)
		return &kvec{kind: types.Bool, t: t, null: null, errs: errs}
	}
}

// ---------------------------------------------------------------------
// Drivers.

// kernelEligible gates kernel use: kernels are a compiled fast path
// (compileOff ablates them with the rest), columnarOff ablates them
// alone, and small row-major relations are not worth encoding.
func kernelEligible(r *Relation) bool {
	if columnarOff.Load() || compileOff.Load() {
		return false
	}
	n := r.Len()
	if n == 0 {
		return false
	}
	if r.cols == nil && n < kernelMinRows {
		return false
	}
	return true
}

// kernelRestrictRows evaluates pred over r with the columnar kernel,
// returning the surviving rows in ascending order. ok=false means the
// kernel declined (ablation, small input, or unsupported node) and the
// caller must use the row path. Rows flagged by the kernel's error
// bitmap re-evaluate row-wise in ascending order through cp (or the
// interpreter), reproducing the exact error and its serial-scan
// position; errors return unwrapped for the caller to prefix.
func kernelRestrictRows(r *Relation, pred expr.Node, cp *compiledPred) ([]int, bool, error) {
	if !kernelEligible(r) {
		return nil, false, nil
	}
	cs := r.columnar()
	prog, ok := kernelCompilePred(pred, kernScope{schema: r.schema, computed: r.computed}, cs.chunkRows)
	if !ok {
		return nil, false, nil
	}
	obs.Inc(obs.RelKernelScans)
	nchunks := len(cs.slots)
	workers := scanChunks(r.Len(), 0)
	if workers > nchunks {
		workers = nchunks
	}
	chunkKeep := make([][]int, nchunks)
	err := runChunks(nchunks, workers, func(_, lo, hi int) error {
		var kc kctx
		var scratch []types.Value
		var cur *rowCursor
		rd := r.reader()
		for ci := lo; ci < hi; ci++ {
			ck, err := cs.chunk(ci)
			if err != nil {
				return err
			}
			base, _ := cs.chunkSpan(ci)
			kc.reset(ck)
			v := prog.root(&kc)
			keep := make([]int, 0, kc.n/4+8)
			if v.errs == nil {
				for i := 0; i < kc.n; i++ {
					if v.t.test(i) {
						keep = append(keep, base+i)
					}
				}
			} else {
				for i := 0; i < kc.n; i++ {
					row := base + i
					if v.errs.test(i) {
						// Counted at detection so aborting on the error
						// still reports the diverted row.
						obs.Inc(obs.RelKernelFallback)
						var ok bool
						var err error
						if cp != nil {
							ok, scratch, err = cp.eval(rd.at(row), scratch)
							if err == nil {
								err = rd.Err()
							}
						} else {
							if cur == nil {
								cur = newRowCursor(r)
							}
							cur.idx = row
							ok, err = expr.EvalPredicate(pred, cur)
							if err == nil {
								err = cur.rd.Err()
							}
						}
						if err != nil {
							return err
						}
						if ok {
							keep = append(keep, row)
						}
					} else if v.t.test(i) {
						keep = append(keep, row)
					}
				}
			}
			chunkKeep[ci] = keep
		}
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	total := 0
	for _, ks := range chunkKeep {
		total += len(ks)
	}
	rows := make([]int, 0, total)
	for _, ks := range chunkKeep {
		rows = append(rows, ks...)
	}
	return rows, true, nil
}

// kernelFusedRows evaluates every restriction of a fused pipeline over
// r's chunks with selection-vector composition: step k runs only
// against rows still selected when entering it (its errors on already-
// dropped rows are ignored, mirroring the row path's short-circuit),
// and error rows re-evaluate row-wise through sh.evalRow in ascending
// order, preserving exact step attribution. ok=false declines to the
// row path. Every pipeline step must kernel-compile, or none runs.
func kernelFusedRows(r *Relation, sh *fusedShape, workers int) ([]int, bool, error) {
	if !kernelEligible(r) || len(sh.preds) == 0 {
		return nil, false, nil
	}
	cs := r.columnar()
	progs := make([]*kernProg, len(sh.preds))
	for i, fp := range sh.preds {
		sc := kernScope{schema: fp.shape.schema, colMap: fp.colMap, computed: fp.shape.computed}
		p, ok := kernelCompilePred(fp.node, sc, cs.chunkRows)
		if !ok {
			return nil, false, nil
		}
		progs[i] = p
	}
	obs.Inc(obs.RelKernelScans)
	nchunks := len(cs.slots)
	w := scanChunks(r.Len(), workers)
	if w > nchunks {
		w = nchunks
	}
	chunkKeep := make([][]int, nchunks)
	err := runChunks(nchunks, w, func(_, lo, hi int) error {
		var kc kctx
		var scratch, tup []types.Value
		for ci := lo; ci < hi; ci++ {
			ck, err := cs.chunk(ci)
			if err != nil {
				return fmt.Errorf("rel: fused scan: %w", err)
			}
			base, _ := cs.chunkSpan(ci)
			kc.reset(ck)
			cn := kc.n
			sel := onesKbits(cn)
			var fallback kbits
			for _, prog := range progs {
				v := prog.root(&kc)
				if v.errs != nil {
					if nf := kAnd(v.errs, sel); kAny(nf) {
						fallback = kOr(fallback, nf)
					}
				}
				sel = kAnd(sel, v.t)
				if fallback != nil {
					sel = kAndNot(sel, fallback)
				}
			}
			keep := make([]int, 0, cn/4+8)
			if fallback == nil {
				for i := 0; i < cn; i++ {
					if sel.test(i) {
						keep = append(keep, base+i)
					}
				}
			} else {
				for i := 0; i < cn; i++ {
					if fallback.test(i) {
						obs.Inc(obs.RelKernelFallback)
						tup = ck.DecodeRow(i, tup[:0])
						ok, s2, err := sh.evalRow(r, base+i, tup, scratch)
						scratch = s2
						if err != nil {
							return err
						}
						if ok {
							keep = append(keep, base+i)
						}
					} else if sel.test(i) {
						keep = append(keep, base+i)
					}
				}
			}
			chunkKeep[ci] = keep
		}
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	total := 0
	for _, ks := range chunkKeep {
		total += len(ks)
	}
	rows := make([]int, 0, total)
	for _, ks := range chunkKeep {
		rows = append(rows, ks...)
	}
	return rows, true, nil
}
